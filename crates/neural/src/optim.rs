//! First-order optimizers.
//!
//! Optimizers are keyed by a *slot* (one per parameter tensor) so a single
//! optimizer instance can drive a whole network while keeping per-tensor
//! state (momentum/Adam moments).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A stateful gradient-descent rule.
pub trait Optimizer {
    /// Apply one update to `params` given `grads`. `slot` identifies the
    /// parameter tensor (layer index × 2 + {0: weights, 1: biases}).
    ///
    /// # Panics
    /// Implementations panic if `params.len() != grads.len()`.
    fn step(&mut self, slot: usize, params: &mut [f32], grads: &[f32]);

    /// Reset all accumulated state.
    fn reset(&mut self);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocity: HashMap<usize, Vec<f32>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, slot: usize, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        if self.momentum == 0.0 {
            for (p, &g) in params.iter_mut().zip(grads) {
                *p -= self.lr * g;
            }
            return;
        }
        let v = self
            .velocity
            .entry(slot)
            .or_insert_with(|| vec![0.0; params.len()]);
        assert_eq!(v.len(), params.len(), "slot reused with a different shape");
        for ((p, &g), vi) in params.iter_mut().zip(grads).zip(v.iter_mut()) {
            *vi = self.momentum * *vi + g;
            *p -= self.lr * *vi;
        }
    }

    fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// Adam (Kingma & Ba, 2015).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability term.
    pub eps: f32,
    state: HashMap<usize, AdamSlot>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct AdamSlot {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl Adam {
    /// Adam with standard hyper-parameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            state: HashMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, slot: usize, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), grads.len(), "param/grad length mismatch");
        let s = self.state.entry(slot).or_insert_with(|| AdamSlot {
            m: vec![0.0; params.len()],
            v: vec![0.0; params.len()],
            t: 0,
        });
        assert_eq!(
            s.m.len(),
            params.len(),
            "slot reused with a different shape"
        );
        s.t += 1;
        let bc1 = 1.0 - self.beta1.powi(s.t as i32);
        let bc2 = 1.0 - self.beta2.powi(s.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            s.m[i] = self.beta1 * s.m[i] + (1.0 - self.beta1) * g;
            s.v[i] = self.beta2 * s.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = s.m[i] / bc1;
            let v_hat = s.v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn reset(&mut self) {
        self.state.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x-3)² with each optimizer.
    fn minimize(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut x = [0.0f32];
        for _ in 0..steps {
            let g = [2.0 * (x[0] - 3.0)];
            opt.step(0, &mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut o = Sgd::new(0.1);
        assert!((minimize(&mut o, 100) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let mut o = Sgd::with_momentum(0.02, 0.9);
        assert!((minimize(&mut o, 300) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut o = Adam::new(0.1);
        assert!((minimize(&mut o, 500) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn slots_keep_independent_state() {
        let mut o = Adam::new(0.1);
        let mut a = [0.0f32];
        let mut b = [0.0f32];
        for _ in 0..50 {
            let ga = [2.0 * (a[0] - 1.0)];
            o.step(0, &mut a, &ga);
            let gb = [2.0 * (b[0] + 1.0)];
            o.step(1, &mut b, &gb);
        }
        assert!(a[0] > 0.5 && b[0] < -0.5);
    }

    #[test]
    fn reset_clears_state() {
        let mut o = Sgd::with_momentum(0.1, 0.9);
        let mut x = [0.0f32];
        o.step(0, &mut x, &[1.0]);
        o.reset();
        assert!(o.velocity.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut o = Sgd::new(0.1);
        let mut x = [0.0f32; 2];
        o.step(0, &mut x, &[1.0]);
    }
}
