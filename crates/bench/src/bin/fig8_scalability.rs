//! Fig 8 — scalability: do the DRL gains hold across mesh sizes?
//! Trains a policy per mesh size (4×4 and 8×8; the observation is
//! region-normalized so the architecture is identical) and compares EDP vs
//! static-max and threshold at mid load.

use noc_bench::comparison::controllers_for;
use noc_bench::{configs, fmt, print_table, save_csv, save_markdown, Scale};
use noc_selfconf::run_controller;
use noc_sim::TrafficPattern;

fn main() {
    let scale = Scale::from_env();
    let epochs = scale.pick(40usize, 3);
    let epoch_cycles = scale.pick(500u64, 200);
    let rate = 0.10;

    let mut rows = Vec::new();
    for (mesh_name, sim, key) in [
        ("4x4", configs::mesh4(), "mesh4"),
        ("8x8", configs::mesh8(), "mesh8"),
    ] {
        let mut factories = controllers_for(&sim, key, scale);
        for (cname, factory) in factories.iter_mut() {
            for (pname, pattern) in [
                ("uniform", TrafficPattern::Uniform),
                ("hotspot", configs::hotspot()),
            ] {
                let cfg = sim.clone().with_traffic(pattern, rate);
                let mut controller = factory();
                let run = run_controller(&cfg, controller.as_mut(), epochs, epoch_cycles)
                    .expect("valid configuration");
                rows.push(vec![
                    mesh_name.to_string(),
                    pname.to_string(),
                    cname.to_string(),
                    fmt(run.aggregate.avg_latency),
                    fmt(run.aggregate.energy_pj / 1e3),
                    fmt(run.aggregate.edp / 1e6),
                ]);
            }
        }
    }
    let headers = [
        "mesh",
        "pattern",
        "controller",
        "avg latency",
        "energy (nJ)",
        "EDP (×10⁶)",
    ];
    let md = print_table(
        "Fig 8 — scalability across mesh sizes (rate 0.10)",
        &headers,
        &rows,
    );
    save_csv("fig8_scalability", &headers, &rows);
    save_markdown("fig8_scalability", &md);
}
