//! Simulation configuration.

use crate::dvfs::{ThrottleEvent, VfTable};
use crate::error::{SimError, SimResult};
use crate::fault::FaultPlan;
use crate::power::PowerModel;
use crate::routing::RoutingAlgorithm;
use crate::topology::{Topology, TopologyKind};
use crate::traffic::{TrafficPattern, TrafficSpec, WorkloadSpec};
use serde::{Deserialize, Serialize};

/// Switch-allocation granularity.
///
/// `PerFlit` is the historical behavior: every buffered flit competes for
/// its output port every cycle, so flits of different packets may interleave
/// on a link (VC ownership still keeps packets apart per VC). `PerPacket`
/// models true wormhole switch allocation: once a head flit wins an output
/// port, the port is held for that packet until its tail flit is switched,
/// exposing head-of-line blocking and long-packet credit dynamics. For
/// single-flit packets the two modes are byte-identical (every grant is a
/// head-and-tail, so the hold is acquired and released within one grant).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SwitchArb {
    /// Flit-granular switch allocation (the legacy default).
    #[default]
    PerFlit,
    /// Packet-granular allocation: output ports are held head→tail.
    PerPacket,
}

impl SwitchArb {
    /// Canonical CLI/label name (`perflit` / `perpacket`).
    pub fn name(self) -> &'static str {
        match self {
            SwitchArb::PerFlit => "perflit",
            SwitchArb::PerPacket => "perpacket",
        }
    }

    /// Parse a canonical name (inverse of [`SwitchArb::name`]).
    ///
    /// # Errors
    /// Returns an error for anything but `perflit`/`perpacket`.
    pub fn parse(s: &str) -> SimResult<SwitchArb> {
        match s {
            "perflit" => Ok(SwitchArb::PerFlit),
            "perpacket" => Ok(SwitchArb::PerPacket),
            other => Err(SimError::InvalidConfig(format!(
                "unknown switch arbitration `{other}` (expected perflit|perpacket)"
            ))),
        }
    }
}

/// Full configuration of a simulation run (Table 1 of the evaluation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Grid width.
    pub width: usize,
    /// Grid height.
    pub height: usize,
    /// Mesh or torus.
    pub kind: TopologyKind,
    /// Virtual channels per port.
    pub num_vcs: usize,
    /// Buffer depth per VC, in flits.
    pub vc_depth: usize,
    /// Packet length in flits.
    pub packet_len: u32,
    /// Switch-allocation granularity. Defaults to the legacy per-flit mode;
    /// configs written before the knob existed deserialize to it.
    #[serde(default)]
    pub switch_arb: SwitchArb,
    /// Routing algorithm.
    pub routing: RoutingAlgorithm,
    /// Traffic specification.
    pub traffic: TrafficSpec,
    /// DVFS level table.
    pub vf_table: VfTable,
    /// DVFS regions along x.
    pub regions_x: usize,
    /// DVFS regions along y.
    pub regions_y: usize,
    /// Power model coefficients.
    pub power: PowerModel,
    /// Forced-throttle (thermal emergency) injections.
    #[serde(default)]
    pub throttles: Vec<ThrottleEvent>,
    /// Timed link/router failures the network applies at cycle boundaries.
    /// Defaults to the empty plan (a pristine fabric).
    #[serde(default)]
    pub fault_plan: FaultPlan,
    /// Number of contiguous router-range tiles `Network::step` runs in
    /// parallel. Defaults to 1 (serial); any value yields byte-identical
    /// results, so this is purely a wall-clock knob.
    #[serde(default = "default_partitions")]
    pub partitions: usize,
    /// RNG seed for traffic generation.
    pub seed: u64,
}

/// Serde default for [`SimConfig::partitions`]: configs written before the
/// knob existed (and configs that omit it) mean a serial step.
fn default_partitions() -> usize {
    1
}

impl Default for SimConfig {
    /// The paper-style default: 8×8 mesh, 4 VCs × 4-flit buffers, 5-flit
    /// packets, XY routing, uniform traffic at 0.10 flits/node/cycle,
    /// four V/F levels over 2×2 regions.
    fn default() -> Self {
        SimConfig {
            width: 8,
            height: 8,
            kind: TopologyKind::Mesh,
            num_vcs: 4,
            vc_depth: 4,
            packet_len: 5,
            switch_arb: SwitchArb::PerFlit,
            routing: RoutingAlgorithm::Xy,
            traffic: TrafficSpec::stationary(TrafficPattern::Uniform, 0.10),
            vf_table: VfTable::four_level(),
            regions_x: 2,
            regions_y: 2,
            power: PowerModel::default_32nm(),
            throttles: Vec::new(),
            fault_plan: FaultPlan::empty(),
            partitions: 1,
            seed: 1,
        }
    }
}

impl SimConfig {
    /// Set grid dimensions.
    pub fn with_size(mut self, width: usize, height: usize) -> Self {
        self.width = width;
        self.height = height;
        self
    }

    /// Set the topology kind (mesh or torus). The routing algorithm is left
    /// untouched; callers switching kinds usually pair this with
    /// [`RoutingAlgorithm::for_topology`].
    pub fn with_topology(mut self, kind: TopologyKind) -> Self {
        self.kind = kind;
        self
    }

    /// Set the traffic to a stationary Bernoulli pattern at `rate`
    /// flits/node/cycle (the legacy pairing).
    pub fn with_traffic(mut self, pattern: TrafficPattern, rate: f64) -> Self {
        self.traffic = TrafficSpec::stationary(pattern, rate);
        self
    }

    /// Set the traffic to a composable workload spec.
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.traffic = TrafficSpec::Workload(workload);
        self
    }

    /// Set an arbitrary traffic spec.
    pub fn with_traffic_spec(mut self, spec: TrafficSpec) -> Self {
        self.traffic = spec;
        self
    }

    /// Set the routing algorithm.
    pub fn with_routing(mut self, routing: RoutingAlgorithm) -> Self {
        self.routing = routing;
        self
    }

    /// Inject forced-throttle (thermal emergency) events.
    pub fn with_throttles(mut self, throttles: Vec<ThrottleEvent>) -> Self {
        self.throttles = throttles;
        self
    }

    /// Inject a fault plan (timed link/router failures).
    pub fn with_faults(mut self, fault_plan: FaultPlan) -> Self {
        self.fault_plan = fault_plan;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the number of parallel step partitions (tiles).
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.partitions = partitions;
        self
    }

    /// Set the DVFS region grid.
    pub fn with_regions(mut self, regions_x: usize, regions_y: usize) -> Self {
        self.regions_x = regions_x;
        self.regions_y = regions_y;
        self
    }

    /// Set VC count and depth.
    pub fn with_vcs(mut self, num_vcs: usize, vc_depth: usize) -> Self {
        self.num_vcs = num_vcs;
        self.vc_depth = vc_depth;
        self
    }

    /// Set packet length in flits.
    pub fn with_packet_len(mut self, packet_len: u32) -> Self {
        self.packet_len = packet_len;
        self
    }

    /// Set the switch-allocation granularity.
    pub fn with_switch_arb(mut self, switch_arb: SwitchArb) -> Self {
        self.switch_arb = switch_arb;
        self
    }

    /// The topology described by this configuration.
    pub fn topology(&self) -> Topology {
        match self.kind {
            TopologyKind::Mesh => Topology::mesh(self.width, self.height),
            TopologyKind::Torus => Topology::torus(self.width, self.height),
        }
    }

    /// Check internal consistency.
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn validate(&self) -> SimResult<()> {
        if self.width == 0 || self.height == 0 {
            return Err(SimError::InvalidConfig(
                "grid dimensions must be positive".into(),
            ));
        }
        if self.num_vcs == 0 || self.vc_depth == 0 {
            return Err(SimError::InvalidConfig(
                "VC count and depth must be positive".into(),
            ));
        }
        if self.num_vcs > 12 {
            // The SoA fabric packs the flattened (port, vc) occupancy into a
            // 64-bit mask per router: 5 ports × 12 VCs = 60 bits.
            return Err(SimError::InvalidConfig(
                "at most 12 VCs per port are supported".into(),
            ));
        }
        if self.packet_len == 0 {
            return Err(SimError::InvalidConfig(
                "packet length must be positive".into(),
            ));
        }
        if self.kind == TopologyKind::Torus && self.num_vcs < 2 {
            return Err(SimError::InvalidConfig(
                "torus requires >= 2 VCs for the dateline partition".into(),
            ));
        }
        if !self.routing.supports(self.kind) {
            return Err(SimError::InvalidConfig(format!(
                "routing {:?} unsupported on {:?}",
                self.routing, self.kind
            )));
        }
        let topo = self.topology();
        self.traffic.validate(&topo)?;
        self.fault_plan.validate(&topo)?;
        if self.regions_x == 0
            || self.regions_y == 0
            || self.regions_x > self.width
            || self.regions_y > self.height
        {
            return Err(SimError::InvalidConfig(format!(
                "invalid region grid {}x{}",
                self.regions_x, self.regions_y
            )));
        }
        if self.partitions == 0 || self.partitions > self.width * self.height {
            return Err(SimError::InvalidConfig(format!(
                "partitions must be in 1..={} (one tile needs at least one router), got {}",
                self.width * self.height,
                self.partitions
            )));
        }
        for t in &self.throttles {
            if t.region >= self.regions_x * self.regions_y {
                return Err(SimError::RegionOutOfRange {
                    region: t.region,
                    regions: self.regions_x * self.regions_y,
                });
            }
            if t.level >= self.vf_table.num_levels() {
                return Err(SimError::VfLevelOutOfRange {
                    level: t.level,
                    levels: self.vf_table.num_levels(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(SimConfig::default().validate().is_ok());
    }

    #[test]
    fn builder_methods_chain() {
        let c = SimConfig::default()
            .with_size(4, 4)
            .with_traffic(TrafficPattern::Transpose, 0.2)
            .with_routing(RoutingAlgorithm::OddEven)
            .with_regions(2, 2)
            .with_vcs(2, 8)
            .with_packet_len(3)
            .with_seed(99);
        assert!(c.validate().is_ok());
        assert_eq!(c.width, 4);
        assert_eq!(c.num_vcs, 2);
        assert_eq!(c.seed, 99);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(SimConfig::default().with_size(0, 4).validate().is_err());
        assert!(SimConfig::default().with_vcs(0, 4).validate().is_err());
        assert!(SimConfig::default().with_packet_len(0).validate().is_err());
        assert!(SimConfig::default().with_regions(16, 1).validate().is_err());
        // Transpose on a rectangle.
        assert!(SimConfig::default()
            .with_size(8, 4)
            .with_traffic(TrafficPattern::Transpose, 0.1)
            .validate()
            .is_err());
        // Torus routing on mesh.
        assert!(SimConfig::default()
            .with_routing(RoutingAlgorithm::TorusDor)
            .validate()
            .is_err());
    }

    #[test]
    fn torus_needs_two_vcs() {
        let c = SimConfig::default()
            .with_vcs(1, 4)
            .with_routing(RoutingAlgorithm::TorusDor)
            .with_topology(TopologyKind::Torus);
        assert!(c.validate().is_err());
        let c = SimConfig::default()
            .with_routing(RoutingAlgorithm::TorusDor)
            .with_topology(TopologyKind::Torus);
        assert!(c.validate().is_ok());
        // The adaptive torus algorithm is torus-only too.
        let c = SimConfig::default()
            .with_routing(RoutingAlgorithm::TorusMinAdaptive)
            .with_topology(TopologyKind::Torus);
        assert!(c.validate().is_ok());
        assert!(SimConfig::default()
            .with_routing(RoutingAlgorithm::TorusMinAdaptive)
            .validate()
            .is_err());
    }

    #[test]
    fn throttle_validation() {
        use crate::dvfs::ThrottleEvent;
        let ok = SimConfig::default().with_throttles(vec![ThrottleEvent {
            start: 0,
            duration: 100,
            region: 0,
            level: 0,
        }]);
        assert!(ok.validate().is_ok());
        let bad_region = SimConfig::default().with_throttles(vec![ThrottleEvent {
            start: 0,
            duration: 100,
            region: 99,
            level: 0,
        }]);
        assert!(bad_region.validate().is_err());
        let bad_level = SimConfig::default().with_throttles(vec![ThrottleEvent {
            start: 0,
            duration: 100,
            region: 0,
            level: 99,
        }]);
        assert!(bad_level.validate().is_err());
    }

    #[test]
    fn fault_plan_validation() {
        use crate::fault::{FaultEvent, FaultPlan, FaultTarget};
        use crate::topology::{NodeId, Port};
        let plan = |node, port| {
            FaultPlan::new(vec![FaultEvent {
                start: 0,
                duration: None,
                target: FaultTarget::Link {
                    node: NodeId(node),
                    port,
                },
            }])
            .unwrap()
        };
        assert!(SimConfig::default()
            .with_faults(plan(0, Port::East))
            .validate()
            .is_ok());
        // Node 0 of an 8x8 mesh has no west neighbor.
        assert!(SimConfig::default()
            .with_faults(plan(0, Port::West))
            .validate()
            .is_err());
        assert!(SimConfig::default()
            .with_faults(plan(999, Port::East))
            .validate()
            .is_err());
    }

    #[test]
    fn config_serializes_roundtrip() {
        let c = SimConfig::default();
        let json = serde_json::to_string(&c).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn partitions_validation() {
        assert!(SimConfig::default().with_partitions(0).validate().is_err());
        assert!(SimConfig::default().with_partitions(64).validate().is_ok());
        assert!(SimConfig::default().with_partitions(65).validate().is_err());
        assert_eq!(SimConfig::default().partitions, 1);
    }

    #[test]
    fn switch_arb_names_round_trip() {
        for arb in [SwitchArb::PerFlit, SwitchArb::PerPacket] {
            assert_eq!(SwitchArb::parse(arb.name()).unwrap(), arb);
        }
        assert!(SwitchArb::parse("wormhole").is_err());
        assert_eq!(SwitchArb::default(), SwitchArb::PerFlit);
    }

    #[test]
    fn switch_arb_defaults_on_old_configs() {
        // Configs serialized before the knob existed deserialize to the
        // legacy per-flit mode.
        let json = serde_json::to_string(&SimConfig::default()).unwrap();
        let pruned = json.replace("\"switch_arb\":\"PerFlit\",", "");
        assert_ne!(json, pruned, "the knob must serialize explicitly");
        let back: SimConfig = serde_json::from_str(&pruned).unwrap();
        assert_eq!(back.switch_arb, SwitchArb::PerFlit);
        assert_eq!(back, SimConfig::default());
        // And the builder round-trips the wormhole mode.
        let c = SimConfig::default().with_switch_arb(SwitchArb::PerPacket);
        let json = serde_json::to_string(&c).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.switch_arb, SwitchArb::PerPacket);
    }

    #[test]
    fn partitions_default_on_old_configs() {
        // Configs serialized before the knob existed must deserialize to a
        // serial step, not to an invalid zero.
        let json = serde_json::to_string(&SimConfig::default()).unwrap();
        let pruned = json.replace("\"partitions\":1,", "");
        assert_ne!(json, pruned, "the knob must serialize explicitly");
        let back: SimConfig = serde_json::from_str(&pruned).unwrap();
        assert_eq!(back.partitions, 1);
        assert_eq!(back, SimConfig::default());
    }
}
