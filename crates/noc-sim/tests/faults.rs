//! Fault-injection liveness and determinism guarantees.
//!
//! The acceptance bar for degraded-fabric operation: under any single link
//! fault, every injected packet is either delivered or explicitly counted in
//! the drop/unreachable bucket within a bounded cycle budget — the network
//! never wedges. The liveness smoke below drives every routing algorithm on
//! 4×4 and 8×8 fabrics, healthy and faulted, and checks the packet
//! conservation identity `offered = ejected + dropped + still-queued`
//! after a full drain.

use noc_sim::{
    FaultEvent, FaultPlan, FaultTarget, NodeId, Port, RoutingAlgorithm, SimConfig, Simulator,
    TopologyKind, TrafficPattern, TrafficSpec,
};

/// All algorithm/topology pairings the simulator supports.
fn all_routings() -> Vec<(RoutingAlgorithm, TopologyKind)> {
    RoutingAlgorithm::NAMED
        .iter()
        .map(|&(_, alg)| {
            let kind = if alg.supports(TopologyKind::Mesh) {
                TopologyKind::Mesh
            } else {
                TopologyKind::Torus
            };
            (alg, kind)
        })
        .collect()
}

fn single_link_fault(kind: TopologyKind) -> FaultPlan {
    // An interior east-west link both mesh sizes have: 5 -> 6 works on 4x4
    // (row 1) and 8x8 (row 0); tori wrap but the link exists all the same.
    let _ = kind;
    FaultPlan::new(vec![FaultEvent {
        start: 0,
        duration: None,
        target: FaultTarget::Link {
            node: NodeId(5),
            port: Port::East,
        },
    }])
    .unwrap()
}

/// Drive `cfg` under uniform load, then stop traffic and drain. Panics if
/// the network wedges or a packet goes unaccounted.
fn assert_delivers_or_drops(mut cfg: SimConfig, what: &str) {
    cfg.seed = 11;
    let mut sim = Simulator::new(cfg).expect("valid faulted config");
    sim.run(2_000);
    // Stop offering new packets, then drain within a hard budget.
    sim.set_traffic(TrafficSpec::stationary(TrafficPattern::Uniform, 0.0))
        .expect("valid spec");
    let mut budget = 4_000u64;
    while sim.network().in_flight() > 0 {
        assert!(budget > 0, "{what}: network wedged with flits in flight");
        sim.run(100);
        budget = budget.saturating_sub(100);
    }
    let s = sim.stats();
    assert!(
        s.offered_packets > 50,
        "{what}: too little traffic to judge"
    );
    // Queued-but-never-injected packets at live sources survive the drain
    // (rate 0 still injects the backlog, so after a clean drain the queues
    // are empty and every offered packet is terminal).
    assert_eq!(
        s.offered_packets,
        s.ejected_packets + s.dropped_packets,
        "{what}: every offered packet must be delivered or counted dropped \
         (offered {}, ejected {}, dropped {})",
        s.offered_packets,
        s.ejected_packets,
        s.dropped_packets
    );
    // Flit-level conservation: every injected flit either ejected or was
    // dropped (dropped_flits may additionally cover never-injected flits of
    // source-dropped packets, hence >=).
    assert!(
        s.ejected_flits <= s.injected_flits,
        "{what}: cannot eject more than was injected"
    );
    assert!(
        s.ejected_flits + s.dropped_flits >= s.injected_flits,
        "{what}: injected flits leaked (injected {}, ejected {}, dropped {})",
        s.injected_flits,
        s.ejected_flits,
        s.dropped_flits
    );
}

#[test]
fn every_routing_delivers_or_drops_on_4x4() {
    for (alg, kind) in all_routings() {
        for faulted in [false, true] {
            let mut cfg = SimConfig::default()
                .with_size(4, 4)
                .with_regions(2, 2)
                .with_traffic(TrafficPattern::Uniform, 0.08)
                .with_routing(alg);
            cfg.kind = kind;
            if faulted {
                cfg = cfg.with_faults(single_link_fault(kind));
            }
            assert_delivers_or_drops(cfg, &format!("4x4/{:?}/faulted={faulted}", alg));
        }
    }
}

#[test]
fn every_routing_delivers_or_drops_on_8x8() {
    for (alg, kind) in all_routings() {
        for faulted in [false, true] {
            let mut cfg = SimConfig::default()
                .with_size(8, 8)
                .with_traffic(TrafficPattern::Uniform, 0.06)
                .with_routing(alg);
            cfg.kind = kind;
            if faulted {
                cfg = cfg.with_faults(single_link_fault(kind));
            }
            assert_delivers_or_drops(cfg, &format!("8x8/{:?}/faulted={faulted}", alg));
        }
    }
}

/// Deterministic algorithms must actually drop across the dead link (they
/// cannot reroute), adaptive ones with a minimal alternative must save most
/// of the traffic. Both end drained either way.
#[test]
fn drops_happen_where_expected() {
    let run = |alg: RoutingAlgorithm| {
        let cfg = SimConfig::default()
            .with_size(4, 4)
            .with_regions(2, 2)
            .with_traffic(TrafficPattern::Uniform, 0.08)
            .with_routing(alg)
            .with_faults(single_link_fault(TopologyKind::Mesh))
            .with_seed(11);
        let mut sim = Simulator::new(cfg).expect("valid config");
        sim.run(4_000);
        let s = sim.stats();
        (s.ejected_packets, s.dropped_packets)
    };
    let (xy_ok, xy_drop) = run(RoutingAlgorithm::Xy);
    assert!(xy_drop > 0, "XY has no alternative to a dead link");
    assert!(xy_ok > 0, "unaffected node pairs still deliver");
    let (oe_ok, oe_drop) = run(RoutingAlgorithm::OddEven);
    assert!(oe_ok > 0);
    assert!(
        oe_drop < xy_drop,
        "odd-even reroutes around the fault more often than XY \
         (oe {oe_drop} vs xy {xy_drop} drops)"
    );
}

/// Same faulted scenario, same seed -> bit-identical stats. The fault path
/// must not introduce any scheduling or iteration-order nondeterminism.
#[test]
fn faulted_runs_are_deterministic() {
    let run = || {
        let cfg = SimConfig::default()
            .with_size(4, 4)
            .with_regions(2, 2)
            .with_traffic(TrafficPattern::Uniform, 0.12)
            .with_routing(RoutingAlgorithm::WestFirst)
            .with_faults(
                FaultPlan::new(vec![
                    FaultEvent {
                        start: 100,
                        duration: Some(500),
                        target: FaultTarget::Link {
                            node: NodeId(5),
                            port: Port::East,
                        },
                    },
                    FaultEvent {
                        start: 300,
                        duration: None,
                        target: FaultTarget::Router { node: NodeId(10) },
                    },
                ])
                .unwrap(),
            )
            .with_seed(3);
        let mut sim = Simulator::new(cfg).expect("valid config");
        sim.run(2_500);
        (
            sim.stats().injected_flits,
            sim.stats().ejected_flits,
            sim.stats().dropped_flits,
            sim.stats().dropped_packets,
            sim.stats().sum_packet_latency,
            sim.stats().energy.total_pj(),
        )
    };
    let a = run();
    assert_eq!(a, run(), "faulted runs must reproduce exactly");
    assert!(a.2 > 0, "the scenario must actually exercise drops");
}
