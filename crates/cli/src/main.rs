//! `noc-cli` — command-line front end for the self-configurable NoC stack.
//!
//! ```text
//! noc-cli simulate [config.json]        run one warmup/measure/drain simulation
//! noc-cli run [flags]                   one simulation configured inline
//!                                       (--topology mesh|torus, --size, ...)
//! noc-cli sweep <rate0> <rate1> <n>     latency-throughput sweep at n rates
//! noc-cli sweep-grid [flags]            parallel scenario grid -> one JSON report
//! noc-cli serve [flags]                 persistent sweep daemon (TCP, JSON lines)
//! noc-cli submit [flags]                send a grid to a daemon, stream results
//! noc-cli serve-ctl <cmd> [--addr A]    ping/stats/shutdown a running daemon
//! noc-cli workload <parse|describe> <l> validate/describe a workload label
//! noc-cli bench [flags]                 timed perf suite -> BENCH_<sha>.json
//! noc-cli train <out.json> [flags]      train a DQN policy on any scenario
//! noc-cli train-grid <dir> [flags]      train a population into a zoo dir
//! noc-cli tournament <dir> [flags]      score every zoo policy x family
//! noc-cli evaluate <policy.json>        run a saved policy vs the baselines
//! noc-cli replay <trace.csv> [period]   replay a packet trace (CSV)
//! noc-cli default-config                print the default SimConfig as JSON
//! ```
//!
//! Argument parsing is intentionally dependency-free.

use noc_cli::{
    cmd_bench, cmd_default_config, cmd_evaluate, cmd_replay, cmd_run, cmd_serve, cmd_serve_ctl,
    cmd_simulate, cmd_submit, cmd_sweep, cmd_sweep_grid, cmd_tournament, cmd_train, cmd_train_grid,
    cmd_workload, CliError,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result: Result<(), CliError> = match args.first().map(String::as_str) {
        Some("simulate") => cmd_simulate(args.get(1).map(String::as_str)),
        Some("sweep") => {
            let parse = |i: usize, what: &str| {
                args.get(i)
                    .ok_or_else(|| CliError(format!("missing argument: {what}")))?
                    .parse::<f64>()
                    .map_err(|e| CliError(format!("bad {what}: {e}")))
            };
            match (parse(1, "rate0"), parse(2, "rate1"), parse(3, "steps")) {
                (Ok(a), Ok(b), Ok(n)) => cmd_sweep(a, b, n as usize),
                (Err(e), _, _) | (_, Err(e), _) | (_, _, Err(e)) => Err(e),
            }
        }
        Some("train") => cmd_train(&args[1..]),
        Some("train-grid") => cmd_train_grid(&args[1..]),
        Some("tournament") => cmd_tournament(&args[1..]),
        Some("evaluate") => match args.get(1) {
            Some(path) => cmd_evaluate(path),
            None => Err(CliError("evaluate requires a policy path".into())),
        },
        Some("replay") => match args.get(1) {
            Some(path) => {
                let period = args.get(2).and_then(|s| s.parse().ok());
                cmd_replay(path, period)
            }
            None => Err(CliError("replay requires a trace path".into())),
        },
        Some("default-config") => cmd_default_config(),
        Some("run") => cmd_run(&args[1..]),
        Some("sweep-grid") => cmd_sweep_grid(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("serve-ctl") => cmd_serve_ctl(&args[1..]),
        Some("workload") => cmd_workload(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        _ => {
            eprintln!(
                "usage: noc-cli <simulate [config.json] | run [flags] | \
                 sweep <r0> <r1> <n> | \
                 sweep-grid [flags] | serve [flags] | submit [flags] | \
                 serve-ctl <ping|stats|shutdown> [--addr A] | \
                 workload <parse|describe> <label> | bench [flags] | \
                 train <out.json> [episodes] [flags] | train-grid <dir> [flags] | \
                 tournament <dir> [flags] | evaluate <policy.json> | \
                 replay <trace.csv> [period] | default-config>\n\
                 run flags: --topology mesh|torus  --size 8x8  --routing xy  \
                 --pattern uniform  --rate 0.10  --workload 'ph[...]'  --arb perflit|perpacket  \
                 --faults N  \
                 --partitions N  --seed N  --warmup N  --measure N  --drain N  \
                 --config base.json\n\
                 sweep-grid flags: --sizes 4x4,8x8  --topologies mesh,torus  \
                 --patterns uniform,transpose  \
                 --rates 0.05,0.10  --routings xy,oddeven  --levels none,0,3  \
                 --faults 0,1,2  --workloads 'ph[uniform:burst0.3x0.05]'  \
                 --arb perflit|perpacket  \
                 --warmup N  --measure N  --drain N  --seed N  \
                 --threads N  --partitions N  --serial  --out report.json  \
                 --cache results/cache\n\
                 serve flags: --addr 127.0.0.1:4600  --cache results/cache  --threads N  \
                 --max-outstanding N  --max-client-outstanding N\n\
                 submit flags: --addr 127.0.0.1:4600  --client NAME  \
                 plus the sweep-grid axis flags (--sizes, --rates, ..., --out)\n\
                 workload labels: ph[<pattern>:<process>[:<len>][@cycles]|...] with processes \
                 bern<rate>, burst<rate_on>x<switch>, pulse<rate>x<period>x<on> and lengths \
                 len<flits>, lenU<min>-<max>, lenB<short>-<long>p<pct>\n\
                 bench flags: --quick  --repeats N  --out bench.json  \
                 --compare baseline.json  --against candidate.json  \
                 --tolerance 0.30  --sha SHA\n\
                 train flags: --episodes N  --max-steps N  plus the run scenario flags \
                 (--topology, --size, --pattern, --rate, --workload, --faults, --seed, ...)\n\
                 train-grid flags: --variants default,small,wide,deep,nstep3,single  \
                 --families mesh/uniform/r0.1,torus/ph[uniform:burst0.3x0.05]/f2  \
                 --episodes N  --max-steps N  --epochs-per-episode N  --threads N  \
                 plus run flags for the base fabric (--size, --seed, ...)\n\
                 tournament flags: --families <as train-grid>  --epochs N  --threads N  \
                 --out report.json  plus run flags for the base fabric"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
