//! Criterion bench: DQN inference and one training step on the
//! self-configuration network shape (15 → 64 → 64 → 9).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rl::{DqnAgent, DqnConfig, LearningAgent, Transition};
use std::hint::black_box;

fn make_agent() -> DqnAgent {
    let mut agent = DqnAgent::new(DqnConfig {
        min_replay: 64,
        ..DqnConfig::default().with_dims(15, 9)
    });
    let mut rng = StdRng::seed_from_u64(0);
    for i in 0..256 {
        let state: Vec<f32> = (0..15).map(|j| ((i + j) % 7) as f32 / 7.0).collect();
        let next: Vec<f32> = (0..15).map(|j| ((i + j + 1) % 7) as f32 / 7.0).collect();
        agent.observe(Transition {
            state,
            action: i % 9,
            reward: (i % 3) as f32 - 1.0,
            next_state: next,
            done: i % 40 == 0,
        });
    }
    // Prime Adam state.
    agent.train_step(&mut rng);
    agent
}

fn bench_dqn(c: &mut Criterion) {
    let agent = make_agent();
    let state: Vec<f32> = (0..15).map(|j| j as f32 / 15.0).collect();
    c.bench_function("dqn_q_values", |b| {
        b.iter(|| black_box(agent.q_values(&state)))
    });

    c.bench_function("dqn_train_step_batch32", |b| {
        let mut agent = make_agent();
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(agent.train_step(&mut rng)))
    });
}

criterion_group!(benches, bench_dqn);
criterion_main!(benches);
