//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// Admissible length specifications for [`vec`]: an exact `usize` or a
/// half-open `Range<usize>`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.rng().gen_range(self.size.lo..self.size.hi_exclusive);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generate vectors whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
