//! Property-based tests of the simulator's core invariants.

use noc_sim::arbiter::RoundRobinArbiter;
use noc_sim::dvfs::ClockGate;
use noc_sim::flit::PacketId;
use noc_sim::routing::walk_route;
use noc_sim::{
    NodeId, Packet, RoutingAlgorithm, SimConfig, Simulator, StatsCollector, Topology, TopologyKind,
    TrafficPattern,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Torus DOR reaches every destination minimally on arbitrary torus
    /// shapes (wrap-aware distance).
    #[test]
    fn torus_dor_minimal(w in 2usize..7, h in 2usize..7, src in 0usize..36, dst in 0usize..36) {
        let topo = Topology::torus(w, h);
        let n = topo.num_nodes();
        let (src, dst) = (NodeId(src % n), NodeId(dst % n));
        let path = walk_route(RoutingAlgorithm::TorusDor, &topo, src, dst, |_| 0);
        prop_assert_eq!(path.len() - 1, topo.distance(src, dst));
    }

    /// Round-robin arbitration is work-conserving (grants whenever any
    /// request is up) and fair (over n consecutive all-up cycles, every
    /// requester wins exactly once).
    #[test]
    fn arbiter_work_conserving_and_fair(n in 1usize..12, rounds in 1usize..5) {
        let mut arb = RoundRobinArbiter::new(n);
        let mut wins = vec![0usize; n];
        for _ in 0..rounds * n {
            let w = arb.grant(&vec![true; n]).expect("requests up => grant");
            wins[w] += 1;
        }
        prop_assert!(wins.iter().all(|&w| w == rounds), "wins {wins:?}");
    }

    /// The clock gate activates round(N·f) times over N cycles for any
    /// frequency scale.
    #[test]
    fn clock_gate_rate_is_exact(scale_pct in 1u32..=100, cycles in 100u64..2000) {
        let scale = scale_pct as f64 / 100.0;
        let mut g = ClockGate::new(scale);
        let active = (0..cycles).filter(|_| g.tick()).count() as f64;
        let expected = cycles as f64 * scale;
        prop_assert!((active - expected).abs() <= 1.0,
            "active {active} vs expected {expected}");
    }

    /// Torus networks with dateline VC partitioning drain all-to-all
    /// traffic (no wrap-around credit deadlock) for random VC/buffer shapes.
    #[test]
    fn torus_drains_all_to_all(vcs in 1usize..3, depth in 1usize..4, plen in 1u32..5) {
        let mut cfg = SimConfig::default()
            .with_size(4, 4)
            .with_regions(2, 2)
            .with_routing(RoutingAlgorithm::TorusDor)
            .with_vcs(vcs * 2, depth) // partition needs an even VC count
            .with_packet_len(plen)
            .with_traffic(TrafficPattern::Uniform, 0.0);
        cfg.kind = TopologyKind::Torus;
        // Bypass the generator: offer a deterministic all-to-all batch
        // directly at the network layer.
        let mut net = noc_sim::Network::new(&cfg).expect("valid config");
        let mut stats = StatsCollector::new(net.regions().num_regions());
        let mut id = 0u64;
        let mut packets = Vec::new();
        for s in 0..16usize {
            for d in 0..16usize {
                if s != d {
                    packets.push(Packet {
                        id: PacketId(id),
                        src: NodeId(s),
                        dst: NodeId(d),
                        len_flits: plen,
                        created_at: 0,
                    });
                    id += 1;
                }
            }
        }
        let total = packets.len() as u64;
        net.offer(packets, &mut stats);
        for _ in 0..30_000 {
            if net.in_flight() == 0 {
                break;
            }
            net.step(&mut stats);
        }
        prop_assert_eq!(net.in_flight(), 0, "torus deadlock: flits stuck");
        prop_assert_eq!(stats.ejected_packets, total);
        prop_assert_eq!(stats.ejected_flits, total * plen as u64);
    }

    /// Region occupancy always sums to total occupancy, and never exceeds
    /// capacity, under random load.
    #[test]
    fn occupancy_accounting_consistent(rate in 0.05f64..0.4, seed in 0u64..50) {
        let cfg = SimConfig::default()
            .with_size(4, 4)
            .with_regions(2, 2)
            .with_traffic(TrafficPattern::Uniform, rate)
            .with_seed(seed);
        let mut sim = Simulator::new(cfg).expect("valid config");
        for _ in 0..10 {
            sim.run(50);
            let net = sim.network();
            let region: usize = net.region_occupancy().iter().sum();
            prop_assert_eq!(region, net.occupancy());
            for (occ, cap) in net.region_occupancy().iter().zip(net.region_capacity()) {
                prop_assert!(*occ <= cap);
            }
        }
    }
}

/// Packet completion accounting under heavy load: each packet completes
/// exactly once (its tail flit defines completion), so ejected flits are an
/// exact multiple of the packet length.
#[test]
fn packets_complete_exactly_once() {
    let cfg = SimConfig::default()
        .with_size(4, 4)
        .with_regions(2, 2)
        .with_traffic(TrafficPattern::Uniform, 0.30)
        .with_seed(9);
    let mut sim = Simulator::new(cfg).expect("valid config");
    sim.run(3000);
    // Stop traffic and drain so every in-flight packet finishes.
    sim.set_traffic(noc_sim::TrafficSpec::Stationary {
        pattern: TrafficPattern::Uniform,
        rate: 0.0,
    })
    .expect("valid spec");
    for _ in 0..200 {
        if sim.network().in_flight() == 0 {
            break;
        }
        sim.run(50);
    }
    let s = sim.stats();
    // Tail flits define completion: after draining, the flit count must
    // equal packets × length exactly (5-flit packets).
    assert!(s.ejected_packets > 100, "enough packets must complete");
    assert_eq!(s.ejected_flits % 5, 0, "whole packets only");
    assert_eq!(s.ejected_flits / 5, s.ejected_packets);
}
