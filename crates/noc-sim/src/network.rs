//! The network: a grid of routers, inter-router links, source (injection)
//! queues, per-region DVFS state, and the global cycle loop.
//!
//! Event application is double-buffered: all routers compute their cycle
//! first, then flit movements and credit returns are applied, so router
//! evaluation order never matters and links have a one-cycle latency.
//!
//! # Partitioned stepping
//!
//! The per-node phase of [`Network::step`] is data-parallel: node `i`
//! mutates only its own fabric slice, `inj[i]`, and `gates[i]`, and every
//! cross-node effect (flit deliveries, credit returns) is buffered and
//! applied afterwards — the one-cycle link latency *is* the boundary
//! exchange. Router state lives in the flat structure-of-arrays
//! [`FabricState`], so `SimConfig::partitions` splits the fabric into
//! contiguous node-range tiles — literal contiguous slices of every state
//! array — stepped concurrently on a persistent thread pool.
//!
//! Determinism: tiles never touch the shared [`StatsCollector`]. Each tile
//! appends the stats mutations it would have applied to a private
//! [`StatsOp`] log, and a serial commit phase replays the logs in tile
//! order — which, because tiles are contiguous ascending ranges, is exactly
//! the serial per-node mutation order (same float-addition order, same
//! event order). Every partition count, including 1, runs this same
//! log-and-replay path, so the partition knob cannot perturb results:
//! reports are byte-identical across `partitions` ∈ {1, 2, 4, ...} (pinned
//! by the differential tests in `tests/partitions.rs`).
//!
//! # Active-router worklist
//!
//! The per-node loop skips routers that are provably inert this cycle: no
//! buffered flits and no source-queue backlog. Such a node's entire serial
//! effect is one leakage record and (possibly) a clock-gate phase advance —
//! it cannot inject, route, or move anything. Skipped nodes are coalesced
//! into [`StatsOp::IdleLeakageRun`] ops that the commit phase expands into
//! the exact per-node leakage records of a full walk, and gate ticks are
//! elided only while every gate provably sits at its zero-phase fixpoint
//! (nominal frequency since reset — the `gates_pristine` flag), so reports
//! stay byte-identical. A delivery, injection, or fault event lands a node
//! back in the active set no later than the cycle it must act on it:
//! deliveries and offered packets raise `occ`/backlog at commit time, and
//! dead routers are handled before the idle test. A forced step-everyone
//! mode ([`Network::set_step_all`]) drives the differential tests that pin
//! the equivalence.

use crate::config::{SimConfig, SwitchArb};
use crate::dvfs::{ClockGate, RegionMap, ThrottleEvent, VfTable};
use crate::error::{SimError, SimResult};
use crate::fault::{FaultPlan, LinkState};
use crate::flit::{Flit, Packet, PacketId};
use crate::power::{PowerEvent, PowerModel};
use crate::router::{RouterCtx, RouterEvent};
use crate::routing::{RoutingAlgorithm, RoutingTables};
use crate::soa::{FabricState, FabricTile};
use crate::stats::{EnergySink, StatsCollector, StatsOp};
use crate::topology::{NodeId, Port, Topology, TopologyKind};
use crate::vc::OutputVcState;
use std::cell::UnsafeCell;
use std::collections::{BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

/// Per-node source queue with credit-tracked access to the router's `Local`
/// input port.
#[derive(Debug, Clone)]
struct InjectionQueue {
    /// Packets waiting to enter the network.
    packets: VecDeque<Packet>,
    /// Total flits across `packets`, maintained on push/pop so backlog
    /// sampling is O(1) per queue even when the queue is saturated.
    queued_flits: usize,
    /// Flits of the packet currently being injected, in order.
    current: VecDeque<Flit>,
    /// Upstream view of the router's Local-port input VCs.
    vc_states: Vec<OutputVcState>,
    /// VC claimed by the packet currently being injected.
    current_vc: Option<usize>,
}

impl InjectionQueue {
    fn new(num_vcs: usize, vc_depth: usize) -> Self {
        InjectionQueue {
            packets: VecDeque::new(),
            queued_flits: 0,
            current: VecDeque::new(),
            vc_states: (0..num_vcs).map(|_| OutputVcState::new(vc_depth)).collect(),
            current_vc: None,
        }
    }

    /// Enqueue a packet for injection.
    fn push_packet(&mut self, p: Packet) {
        self.queued_flits += p.len_flits as usize;
        self.packets.push_back(p);
    }

    /// Dequeue the next packet to inject.
    fn pop_packet(&mut self) -> Option<Packet> {
        let p = self.packets.pop_front();
        if let Some(p) = &p {
            self.queued_flits -= p.len_flits as usize;
        }
        p
    }

    /// Flits still waiting (queued packets plus the partially injected one).
    fn backlog_flits(&self) -> usize {
        debug_assert_eq!(
            self.queued_flits,
            self.packets
                .iter()
                .map(|p| p.len_flits as usize)
                .sum::<usize>(),
            "queued-flit counter out of sync with the packet queue"
        );
        self.current.len() + self.queued_flits
    }
}

/// A flit in transit on a link, to be delivered at the end of the cycle.
#[derive(Debug, Clone)]
struct Delivery {
    to: NodeId,
    in_port: Port,
    flit: Flit,
}

/// A credit to return to an upstream sender.
#[derive(Debug, Clone)]
struct CreditReturn {
    /// Router whose input buffer drained.
    at: NodeId,
    /// Input port the flit had arrived on.
    in_port: Port,
    vc: usize,
}

/// The simulated network.
#[derive(Debug)]
pub struct Network {
    topo: Topology,
    routing: RoutingAlgorithm,
    /// Switch-allocation granularity (see [`SwitchArb`]).
    switch_arb: SwitchArb,
    /// k-path tables, present iff `routing` is [`RoutingAlgorithm::Table`].
    /// Rebuilt whenever the live-link set changes at a fault boundary.
    tables: Option<RoutingTables>,
    /// All router pipeline state, structure-of-arrays (see [`crate::soa`]).
    fabric: FabricState,
    inj: Vec<InjectionQueue>,
    gates: Vec<ClockGate>,
    power: PowerModel,
    vf_table: VfTable,
    regions: RegionMap,
    /// Level requested per region (by the controller/agent).
    region_levels: Vec<usize>,
    /// Level actually in force per region (desired capped by any active
    /// throttle emergency).
    effective_levels: Vec<usize>,
    /// Forced-throttle emergencies.
    throttles: Vec<ThrottleEvent>,
    /// Outgoing link count per node, for leakage accounting.
    links_out: Vec<usize>,
    /// Region index per node (precomputed once; the cycle loop needs it for
    /// every node every cycle).
    region_by_node: Vec<usize>,
    /// Dynamic-energy multiplier per region at its current effective level,
    /// recomputed only when an effective level changes.
    region_dynamic_scale: Vec<f64>,
    /// Leakage multiplier per region at its current effective level.
    region_leakage_scale: Vec<f64>,
    /// Timed link/router failures (empty on a pristine fabric).
    fault_plan: FaultPlan,
    /// Cycles at which the active fault set changes, sorted ascending.
    fault_boundaries: Vec<u64>,
    /// Next unapplied entry of `fault_boundaries`.
    next_fault_boundary: usize,
    /// Instantaneous link/router liveness under the plan.
    link_state: LinkState,
    /// Whether the plan has any events — gates every fault code path so a
    /// fault-free simulation pays nothing.
    has_faults: bool,
    cycle: u64,
    /// Worklist kill switch: when true, every router is stepped every cycle
    /// even if provably inert. Test-only escape hatch — the differential
    /// harness pins worklist runs byte-identical to step-everyone runs.
    step_all: bool,
    /// True while every clock gate still sits at its initial zero-phase
    /// nominal-frequency fixpoint (`tick()` returns true and leaves the
    /// phase at exactly 0.0), which lets the worklist skip idle routers'
    /// gate ticks without perturbing state. Cleared permanently the first
    /// time any gate's frequency changes: post-change phases are
    /// float-rounding-sensitive, so from then on every gate ticks every
    /// cycle whether or not its router is stepped.
    gates_pristine: bool,
    /// Number of contiguous node-range tiles the per-node phase is split
    /// into (1 = no intra-simulation parallelism).
    partitions: usize,
    /// Persistent worker pool driving tiles 1.. when `partitions > 1`
    /// (tile 0 always runs on the calling thread).
    pool: Option<TilePool>,
    /// Reusable per-cycle buffers. [`Network::step`] used to allocate fresh
    /// `Vec`s for link deliveries, credit returns, router events, and the
    /// region-occupancy sample every cycle; hoisting them here removes the
    /// allocations per simulated cycle from the hottest loop in the system.
    scratch: StepScratch,
}

/// Scratch buffers reused across [`Network::step`] calls (drained at the end
/// of every cycle, so only capacity persists).
#[derive(Debug, Default)]
struct StepScratch {
    /// One outbox per tile, reused across cycles.
    outboxes: Vec<TileOutbox>,
    region_occ: Vec<usize>,
}

/// Everything a tile produces during the per-node phase: buffered cross-node
/// effects (deliveries, credits) plus the ordered log of stats mutations to
/// replay serially in the commit phase.
#[derive(Debug, Default)]
struct TileOutbox {
    /// Stats mutations in exact per-node order (see module docs).
    ops: Vec<StatsOp>,
    /// Flits leaving this tile's routers (possibly into another tile).
    deliveries: Vec<Delivery>,
    /// Credits owed to upstream routers (possibly in another tile).
    credits: Vec<CreditReturn>,
    /// Reusable router-event buffer for this tile's step loop.
    events: Vec<RouterEvent>,
}

/// Immutable, cross-tile state the per-node phase reads. Everything here is
/// frozen for the duration of the phase, so sharing it across worker
/// threads is safe.
#[derive(Debug)]
struct TileShared<'a> {
    topo: &'a Topology,
    routing: RoutingAlgorithm,
    arb: SwitchArb,
    tables: Option<&'a RoutingTables>,
    power: &'a PowerModel,
    links_out: &'a [usize],
    region_by_node: &'a [usize],
    region_dynamic_scale: &'a [f64],
    region_leakage_scale: &'a [f64],
    link_state: &'a LinkState,
    has_faults: bool,
    cycle: u64,
    /// Forced step-everyone mode (worklist disabled).
    step_all: bool,
    /// Whether idle routers may skip their clock-gate tick (see
    /// `Network::gates_pristine`).
    gates_pristine: bool,
}

/// One tile's disjoint mutable slice of the fabric: the SoA router-state
/// slices, source queues, and clock gates for the contiguous node range
/// starting at `base`.
#[derive(Debug)]
struct TileTask<'a> {
    base: usize,
    fabric: FabricTile<'a>,
    inj: &'a mut [InjectionQueue],
    gates: &'a mut [ClockGate],
    out: &'a mut TileOutbox,
}

/// Shared view of the per-tile task cells handed to the pool closure.
///
/// Safety: each worker dereferences only the cell at its own tile index, so
/// no two threads ever alias the same `TileTask`. The `T: Send` bound makes
/// the compiler verify the tasks' contents may move across threads.
struct SyncTasks<'a, T>(&'a [UnsafeCell<T>]);
unsafe impl<T: Send> Sync for SyncTasks<'_, T> {}

impl<T> SyncTasks<'_, T> {
    /// Raw pointer to the task at `t`.
    ///
    /// # Safety
    /// The caller must guarantee no two threads dereference the same index
    /// concurrently (here: worker `t` is the only one touching tile `t`).
    unsafe fn get(&self, t: usize) -> *mut T {
        self.0[t].get()
    }
}

/// Type-erased pointer to the per-cycle tile closure. The lifetime is erased
/// so the pointer can live in the pool's shared cell; workers only
/// dereference it between the start and done barriers of a dispatch, while
/// the closure is guaranteed alive on the coordinating thread's stack.
type Job = *const (dyn Fn(usize) + Sync);

/// State shared between the coordinator and the pool workers.
struct PoolShared {
    /// Released by the coordinator once `job` is set (or shutdown raised).
    start: Barrier,
    /// Crossed by everyone once the dispatched job is finished.
    done: Barrier,
    /// The closure to run this dispatch, written only between barriers.
    job: UnsafeCell<Option<Job>>,
    /// Raised (before releasing `start`) to terminate the workers.
    shutdown: AtomicBool,
}

// Safety: `job` is written only by the coordinator while the workers are
// parked on `start`, and read only after crossing it; the barriers provide
// the required happens-before edges. (`Send` is needed because the raw
// closure pointer makes the type `!Send` by default; the same barrier
// protocol keeps handing it across threads sound.)
unsafe impl Sync for PoolShared {}
unsafe impl Send for PoolShared {}

/// Persistent barrier-synchronized worker pool for the partitioned per-node
/// phase.
///
/// `noc_selfconf::parallel_map` (the sweep-level pool) is not reusable here:
/// `noc-selfconf` depends on this crate, so reaching for it would create a
/// dependency cycle — and it spawns fresh threads per call, which at one
/// dispatch *per simulated cycle* would cost more than the cycle itself.
/// This pool spawns `partitions - 1` workers once and reuses them; a
/// dispatch is two barrier crossings.
struct TilePool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl TilePool {
    fn new(partitions: usize) -> Self {
        debug_assert!(partitions > 1);
        let shared = Arc::new(PoolShared {
            start: Barrier::new(partitions),
            done: Barrier::new(partitions),
            job: UnsafeCell::new(None),
            shutdown: AtomicBool::new(false),
        });
        let workers = (1..partitions)
            .map(|t| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    sh.start.wait();
                    if sh.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                    // Safety: the coordinator set `job` before releasing the
                    // start barrier and keeps the closure alive until every
                    // thread crosses the done barrier.
                    let job = unsafe { (*sh.job.get()).expect("job set before dispatch") };
                    (unsafe { &*job })(t);
                    sh.done.wait();
                })
            })
            .collect();
        TilePool { shared, workers }
    }

    /// Run `f(tile)` for every tile index concurrently; tile 0 runs on the
    /// calling thread. Returns once every tile has finished.
    fn run(&self, f: &(dyn Fn(usize) + Sync)) {
        // Safety: erasing the lifetime is sound because the pointer is
        // cleared before this frame (and `f`) can go away — workers finish
        // with it strictly before the done barrier releases us.
        let job: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
        };
        unsafe {
            *self.shared.job.get() = Some(job);
        }
        self.shared.start.wait();
        f(0);
        self.shared.done.wait();
        unsafe {
            *self.shared.job.get() = None;
        }
    }
}

impl Drop for TilePool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.start.wait();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for TilePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TilePool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Network {
    /// Build an idle network from a validated configuration.
    ///
    /// # Errors
    /// Returns an error if the configuration is invalid.
    pub fn new(config: &SimConfig) -> SimResult<Self> {
        config.validate()?;
        let topo = config.topology();
        let vc_partition = config.kind == TopologyKind::Torus;
        let fabric = FabricState::new(
            topo.num_nodes(),
            config.num_vcs,
            config.vc_depth,
            vc_partition,
        );
        let inj = topo
            .nodes()
            .map(|_| InjectionQueue::new(config.num_vcs, config.vc_depth))
            .collect();
        let regions = RegionMap::new(&topo, config.regions_x, config.regions_y)?;
        let max_level = config.vf_table.max_level();
        let gates = topo
            .nodes()
            .map(|_| ClockGate::new(config.vf_table.levels()[max_level].freq_scale))
            .collect();
        let links_out = topo
            .nodes()
            .map(|n| {
                Port::ALL
                    .iter()
                    .filter(|&&p| p != Port::Local && topo.neighbor(n, p).is_some())
                    .count()
            })
            .collect();
        let region_by_node: Vec<usize> =
            topo.nodes().map(|n| regions.region_of(&topo, n)).collect();
        let max_vf = config.vf_table.levels()[max_level];
        let nominal = config.vf_table.nominal_voltage();
        let num_regions = regions.num_regions();
        let fault_plan = config.fault_plan.clone();
        let fault_boundaries = fault_plan.boundaries();
        let has_faults = !fault_plan.is_empty();
        let link_state = LinkState::healthy(topo.num_nodes());
        let partitions = config.partitions;
        let pool = (partitions > 1).then(|| TilePool::new(partitions));
        let gates_pristine = max_vf.freq_scale == 1.0;
        let tables = (config.routing == RoutingAlgorithm::Table)
            .then(|| RoutingTables::build(&topo, None, RoutingTables::K_DEFAULT));
        Ok(Network {
            topo,
            routing: config.routing,
            switch_arb: config.switch_arb,
            tables,
            fabric,
            inj,
            gates,
            power: config.power,
            vf_table: config.vf_table.clone(),
            region_levels: vec![max_level; num_regions],
            effective_levels: vec![max_level; num_regions],
            throttles: config.throttles.clone(),
            regions,
            links_out,
            region_by_node,
            region_dynamic_scale: vec![max_vf.dynamic_scale(nominal); num_regions],
            region_leakage_scale: vec![max_vf.leakage_scale(nominal); num_regions],
            fault_plan,
            fault_boundaries,
            next_fault_boundary: 0,
            link_state,
            has_faults,
            cycle: 0,
            step_all: false,
            gates_pristine,
            partitions,
            pool,
            scratch: StepScratch::default(),
        })
    }

    /// Number of tiles the per-node phase is split into.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Force the per-node loop to step every router every cycle, disabling
    /// the active-router worklist. Results must not change — the worklist
    /// is a pure strength reduction — and the differential tests hold both
    /// modes byte-identical. Test instrumentation, not a tuning knob.
    pub fn set_step_all(&mut self, step_all: bool) {
        self.step_all = step_all;
    }

    /// The topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The DVFS region partition.
    pub fn regions(&self) -> &RegionMap {
        &self.regions
    }

    /// The V/F level table.
    pub fn vf_table(&self) -> &VfTable {
        &self.vf_table
    }

    /// V/F level *requested* per region (what the controller set). The
    /// level actually in force may be lower during a throttle emergency —
    /// see [`Network::effective_region_levels`].
    pub fn region_levels(&self) -> &[usize] {
        &self.region_levels
    }

    /// V/F level actually in force per region (requested level capped by
    /// any active throttle emergency).
    pub fn effective_region_levels(&self) -> &[usize] {
        &self.effective_levels
    }

    /// Whether any throttle emergency is active at the current cycle.
    pub fn throttle_active(&self) -> bool {
        self.throttles.iter().any(|t| t.active_at(self.cycle))
    }

    /// Current routing algorithm.
    pub fn routing(&self) -> RoutingAlgorithm {
        self.routing
    }

    /// Switch-allocation granularity in force.
    pub fn switch_arb(&self) -> SwitchArb {
        self.switch_arb
    }

    /// The k-path tables, present iff table routing is in force (test and
    /// analysis observability).
    pub fn routing_tables(&self) -> Option<&RoutingTables> {
        self.tables.as_ref()
    }

    /// Instantaneous link/router liveness under the configured fault plan
    /// (all up on a fabric without faults).
    pub fn faults(&self) -> &LinkState {
        &self.link_state
    }

    /// The configured fault plan (empty on a pristine fabric).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fault_plan
    }

    /// Current global cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Set one region's V/F level.
    ///
    /// # Errors
    /// Returns an error for out-of-range region or level indices.
    pub fn set_region_level(&mut self, region: usize, level: usize) -> SimResult<()> {
        if region >= self.region_levels.len() {
            return Err(SimError::RegionOutOfRange {
                region,
                regions: self.region_levels.len(),
            });
        }
        self.vf_table.level(level)?; // validate
        self.region_levels[region] = level;
        self.sync_effective_levels();
        Ok(())
    }

    /// Recompute effective levels (requested ∧ throttles) and update clock
    /// gates for regions whose effective level changed.
    fn sync_effective_levels(&mut self) {
        for region in 0..self.region_levels.len() {
            let mut eff = self.region_levels[region];
            for t in &self.throttles {
                if t.region == region && t.active_at(self.cycle) {
                    eff = eff.min(t.level);
                }
            }
            if eff != self.effective_levels[region] {
                self.effective_levels[region] = eff;
                let vf = self.vf_table.level(eff).expect("effective level valid");
                let nominal = self.vf_table.nominal_voltage();
                self.region_dynamic_scale[region] = vf.dynamic_scale(nominal);
                self.region_leakage_scale[region] = vf.leakage_scale(nominal);
                for (node, &r) in self.region_by_node.iter().enumerate() {
                    if r == region {
                        self.gates[node].set_freq_scale(vf.freq_scale);
                    }
                }
                // Gate phases may leave the zero fixpoint from here on:
                // idle routers must tick their gates every cycle.
                self.gates_pristine = false;
            }
        }
    }

    /// Set every region to the same V/F level.
    ///
    /// # Errors
    /// Returns an error for an out-of-range level index.
    pub fn set_all_levels(&mut self, level: usize) -> SimResult<()> {
        for r in 0..self.region_levels.len() {
            self.set_region_level(r, level)?;
        }
        Ok(())
    }

    /// Switch the routing algorithm at runtime (takes effect for subsequent
    /// route computations; in-flight packets keep their assigned routes).
    ///
    /// # Errors
    /// Returns an error if the algorithm does not support the topology.
    pub fn set_routing(&mut self, routing: RoutingAlgorithm) -> SimResult<()> {
        if !routing.supports(self.topo.kind()) {
            return Err(SimError::InvalidConfig(format!(
                "routing {:?} unsupported on {:?}",
                routing,
                self.topo.kind()
            )));
        }
        self.routing = routing;
        if routing == RoutingAlgorithm::Table {
            if self.tables.is_none() {
                let faults = self.has_faults.then_some(&self.link_state);
                self.tables = Some(RoutingTables::build(
                    &self.topo,
                    faults,
                    RoutingTables::K_DEFAULT,
                ));
            }
        } else {
            self.tables = None;
        }
        Ok(())
    }

    /// Offer freshly generated packets to their source queues.
    pub fn offer(&mut self, packets: Vec<Packet>, stats: &mut StatsCollector) {
        for p in packets {
            stats.record_offered();
            self.inj[p.src.0].push_packet(p);
        }
    }

    /// Total flits buffered inside routers.
    pub fn occupancy(&self) -> usize {
        (0..self.topo.num_nodes())
            .map(|i| self.fabric.occupancy(i))
            .sum()
    }

    /// Buffered flits per region.
    pub fn region_occupancy(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.region_occupancy_into(&mut out);
        out
    }

    /// Fill `out` with buffered flits per region (allocation-free variant of
    /// [`Network::region_occupancy`] for the cycle loop).
    fn region_occupancy_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.resize(self.regions.num_regions(), 0);
        // `FabricState::occupancy` recounts against the buffers in debug
        // builds, so this per-cycle sample keeps the O(1) counters honest.
        for i in 0..self.topo.num_nodes() {
            out[self.region_by_node[i]] += self.fabric.occupancy(i);
        }
    }

    /// Total buffer capacity per region (for normalizing occupancy).
    pub fn region_capacity(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.regions.num_regions()];
        let cap = self.fabric.buffer_capacity();
        for n in self.topo.nodes() {
            out[self.regions.region_of(&self.topo, n)] += cap;
        }
        out
    }

    /// Flits waiting in source queues.
    pub fn backlog(&self) -> usize {
        self.inj.iter().map(|q| q.backlog_flits()).sum()
    }

    /// Flits anywhere in the system (source queues + router buffers).
    pub fn in_flight(&self) -> usize {
        self.backlog() + self.occupancy()
    }

    /// Advance the network one global clock cycle.
    ///
    /// The per-node phase runs tile-by-tile (in parallel when
    /// `partitions > 1`), logging stats mutations per tile; the commit
    /// phase then replays those logs and applies deliveries and credits
    /// serially in tile order. See the module docs for why this makes the
    /// partition count observationally irrelevant.
    pub fn step(&mut self, stats: &mut StatsCollector) {
        if !self.throttles.is_empty() {
            self.sync_effective_levels();
        }
        if self.has_faults {
            self.apply_fault_boundaries(stats);
        }
        // Borrow the reusable per-tile outboxes out of `self` for the cycle
        // (they are drained before being returned, so only their capacity
        // carries over between cycles).
        let mut outboxes = std::mem::take(&mut self.scratch.outboxes);
        if outboxes.len() != self.partitions {
            outboxes.resize_with(self.partitions, TileOutbox::default);
        }

        {
            let shared = TileShared {
                topo: &self.topo,
                routing: self.routing,
                arb: self.switch_arb,
                tables: self.tables.as_ref(),
                power: &self.power,
                links_out: &self.links_out,
                region_by_node: &self.region_by_node,
                region_dynamic_scale: &self.region_dynamic_scale,
                region_leakage_scale: &self.region_leakage_scale,
                link_state: &self.link_state,
                has_faults: self.has_faults,
                cycle: self.cycle,
                step_all: self.step_all,
                gates_pristine: self.gates_pristine,
            };
            // Carve the fabric into disjoint contiguous slices, one per tile.
            let n = self.topo.num_nodes();
            let mut bounds = Vec::with_capacity(self.partitions + 1);
            bounds.push(0);
            for t in 0..self.partitions {
                bounds.push((t + 1) * n / self.partitions);
            }
            let mut tasks: Vec<TileTask<'_>> = Vec::with_capacity(self.partitions);
            let mut inj = self.inj.as_mut_slice();
            let mut gates = self.gates.as_mut_slice();
            let mut outs = outboxes.as_mut_slice();
            for (t, fabric) in self.fabric.split_tiles(&bounds).into_iter().enumerate() {
                let base = bounds[t];
                let len = bounds[t + 1] - base;
                let (q, rest) = inj.split_at_mut(len);
                inj = rest;
                let (g, rest) = gates.split_at_mut(len);
                gates = rest;
                let (o, rest) = outs.split_at_mut(1);
                outs = rest;
                tasks.push(TileTask {
                    base,
                    fabric,
                    inj: q,
                    gates: g,
                    out: &mut o[0],
                });
            }
            match &self.pool {
                Some(pool) => {
                    let cells: Vec<UnsafeCell<TileTask<'_>>> =
                        tasks.into_iter().map(UnsafeCell::new).collect();
                    let cells = SyncTasks(&cells);
                    let shared = &shared;
                    pool.run(&|t| {
                        // Safety: tile index t is executed by exactly one
                        // thread per dispatch, so the cell is unaliased.
                        let task = unsafe { &mut *cells.get(t) };
                        step_tile(shared, task);
                    });
                }
                None => {
                    for task in &mut tasks {
                        step_tile(&shared, task);
                    }
                }
            }
        }

        // Commit phase (serial). Tiles are contiguous ascending node ranges,
        // so replaying/applying each outbox in tile order reproduces the
        // exact serial per-node order of stats mutations, deliveries, and
        // credits.
        let n = self.topo.num_nodes();
        for ob in &mut outboxes {
            for op in ob.ops.drain(..) {
                match op {
                    // Expand a coalesced idle run into the exact per-node
                    // leakage records a full walk would have produced: same
                    // calls, same order, same floats. Idle means zero
                    // occupancy and backlog, so the serial gating condition
                    // reduces to the fraction check.
                    StatsOp::IdleLeakageRun { from, to } => {
                        for i in from..to {
                            let mut leak = self.region_leakage_scale[self.region_by_node[i]];
                            if self.power.idle_leakage_fraction < 1.0 {
                                leak *= self.power.idle_leakage_fraction;
                            }
                            stats
                                .energy
                                .record_leakage(&self.power, self.links_out[i], leak);
                        }
                    }
                    op => stats.apply(op, &self.power, n, self.cycle),
                }
            }
        }
        {
            let mut tile = self.fabric.tile();
            for ob in &mut outboxes {
                for mut d in ob.deliveries.drain(..) {
                    if crosses_dateline_rev(&self.topo, d.to, d.in_port) {
                        d.flit.vc_class = 1;
                    }
                    let mut ctx = RouterCtx {
                        topo: &self.topo,
                        routing: self.routing,
                        power: &self.power,
                        energy: EnergySink::Meter(&mut stats.energy),
                        dynamic_scale: self.region_dynamic_scale[self.region_by_node[d.to.0]],
                        faults: None,
                        arb: self.switch_arb,
                        tables: self.tables.as_ref(),
                    };
                    tile.accept(d.to.0, d.in_port, d.flit, &mut ctx);
                }
            }
            for ob in &mut outboxes {
                for c in ob.credits.drain(..) {
                    if c.in_port == Port::Local {
                        self.inj[c.at.0].vc_states[c.vc].credits += 1;
                    } else {
                        let upstream = self
                            .topo
                            .neighbor(c.at, c.in_port)
                            .expect("credit toward a missing neighbor");
                        tile.return_credit(upstream.0, c.in_port.opposite(), c.vc);
                    }
                }
            }
        }

        let mut region_occ = std::mem::take(&mut self.scratch.region_occ);
        self.region_occupancy_into(&mut region_occ);
        let total_occ = region_occ.iter().sum();
        stats.sample_occupancy(
            total_occ,
            &region_occ,
            self.backlog(),
            self.link_state.dead_link_count(),
        );
        self.scratch.region_occ = region_occ;

        self.scratch.outboxes = outboxes;
        self.cycle += 1;
    }

    /// Apply every fault boundary reached by the current cycle: rebuild the
    /// link state and purge packets severed by newly dead components.
    fn apply_fault_boundaries(&mut self, stats: &mut StatsCollector) {
        let mut crossed = false;
        while self.next_fault_boundary < self.fault_boundaries.len()
            && self.fault_boundaries[self.next_fault_boundary] <= self.cycle
        {
            self.next_fault_boundary += 1;
            crossed = true;
        }
        if crossed {
            self.link_state
                .recompute(&self.topo, &self.fault_plan, self.cycle);
            if self.routing == RoutingAlgorithm::Table {
                // Rebuild the k-path tables over the new live-link set —
                // fault onset and heal alike. Packets caught off every new
                // path become unroutable and are drained, not wedged.
                self.tables = Some(RoutingTables::build(
                    &self.topo,
                    Some(&self.link_state),
                    RoutingTables::K_DEFAULT,
                ));
            }
            self.purge_condemned(stats);
        }
    }

    /// Remove every packet severed by the current fault set, network-wide,
    /// and count it as dropped.
    ///
    /// A packet is condemned when it is mid-transmission across a dead link
    /// (the upstream router's output-VC ownership names it) or has flits
    /// buffered inside a dead router. Purging walks every router, removes
    /// the condemned packets' flits, releases the VCs they held along their
    /// whole path, and restores the credits those flits consumed, so the
    /// surviving traffic — and any later heal of a transient fault — sees
    /// consistent flow-control state. Routes that point into a dead link but
    /// have not yet committed downstream are cleared for re-routing instead
    /// of condemned.
    fn purge_condemned(&mut self, stats: &mut StatsCollector) {
        let n = self.topo.num_nodes();
        let mut condemned: BTreeSet<PacketId> = BTreeSet::new();
        for i in 0..n {
            let node = NodeId(i);
            if !self.link_state.is_router_up(node) {
                self.fabric.condemn_all(i, &mut condemned);
                if let Some(f) = self.inj[i].current.front() {
                    // Mid-injection at a dying router: the whole packet goes.
                    condemned.insert(f.packet);
                }
            } else {
                for port in [Port::North, Port::East, Port::South, Port::West] {
                    if self.topo.neighbor(node, port).is_some()
                        && !self.link_state.is_link_up(node, port)
                    {
                        self.fabric.condemn_output_owners(i, port, &mut condemned);
                    }
                }
            }
        }

        // Sweep: drop condemned flits everywhere (collecting the credits to
        // restore), and clear uncommitted routes into dead links.
        let mut restored: Vec<(usize, Port, usize)> = Vec::new();
        let mut dropped_flits = 0u64;
        {
            let link_state = &self.link_state;
            let mut tile = self.fabric.tile();
            for i in 0..n {
                let node = NodeId(i);
                dropped_flits += tile.purge_and_reroute(
                    i,
                    &condemned,
                    |p| !link_state.is_link_up(node, p),
                    |in_port, vc| restored.push((i, in_port, vc)),
                );
            }
        }
        {
            let mut tile = self.fabric.tile();
            for (node, in_port, vc) in restored {
                if in_port == Port::Local {
                    self.inj[node].vc_states[vc].credits += 1;
                } else if let Some(up) = self.topo.neighbor(NodeId(node), in_port) {
                    tile.return_credit(up.0, in_port.opposite(), vc);
                }
            }
        }

        // Source queues: a condemned packet caught mid-injection loses its
        // not-yet-injected flits too, and frees its claimed local VC.
        if !condemned.is_empty() {
            for q in &mut self.inj {
                let pid = match q.current.front() {
                    Some(f) => f.packet,
                    None => continue,
                };
                if !condemned.contains(&pid) {
                    continue;
                }
                dropped_flits += q.current.len() as u64;
                q.current.clear();
                if let Some(vc) = q.current_vc.take() {
                    q.vc_states[vc].owner = None;
                }
            }
        }
        stats.record_purged(condemned.len() as u64, dropped_flits);
    }
}

/// Whether a mesh/torus hop from `from` via `port` crosses a wrap-around
/// (dateline) link.
fn crosses_dateline(topo: &Topology, from: NodeId, port: Port) -> bool {
    if topo.kind() != TopologyKind::Torus {
        return false;
    }
    let c = topo.coord(from);
    match port {
        Port::East => c.x == topo.width() - 1,
        Port::West => c.x == 0,
        Port::South => c.y == topo.height() - 1,
        Port::North => c.y == 0,
        Port::Local => false,
    }
}

/// Dateline check phrased from the receiving side: the delivery into `to` on
/// `in_port` crossed a wrap link iff the sender-side check holds for the
/// reverse hop.
fn crosses_dateline_rev(topo: &Topology, to: NodeId, in_port: Port) -> bool {
    if topo.kind() != TopologyKind::Torus {
        return false;
    }
    let from = topo
        .neighbor(to, in_port)
        .expect("delivery from a missing neighbor");
    crosses_dateline(topo, from, in_port.opposite())
}

/// Close the pending idle run, if any, by logging its coalesced leakage op.
/// Must be called before logging any other node's op (ops replay in log
/// order, and the run's leakage must land exactly where a full walk would
/// have put it) and at the end of the tile.
#[inline]
fn flush_idle_run(run: &mut Option<(usize, usize)>, ops: &mut Vec<StatsOp>) {
    if let Some((from, to)) = run.take() {
        ops.push(StatsOp::IdleLeakageRun { from, to });
    }
}

/// Step one tile's node range: the exact serial per-node loop, with all
/// stats mutations logged to the tile's outbox instead of applied, and all
/// cross-node effects buffered.
///
/// Nodes with no buffered flits and no source backlog are skipped (the
/// active-router worklist): such a node's pipeline and injection stages are
/// provably no-ops, so its whole serial effect is one leakage record —
/// coalesced into an [`StatsOp::IdleLeakageRun`] — plus a clock-gate tick,
/// elided only while the gates are pristine (see `Network::gates_pristine`).
/// Occupancy and backlog are stable during the phase (deliveries and
/// credits commit afterwards; packets are offered before the step), so the
/// idle test over start-of-cycle values is exact.
fn step_tile(shared: &TileShared<'_>, tile: &mut TileTask<'_>) {
    let mut events = std::mem::take(&mut tile.out.events);
    let mut idle_run: Option<(usize, usize)> = None;
    for k in 0..tile.inj.len() {
        let i = tile.base + k;
        let node = NodeId(i);
        if shared.has_faults && !shared.link_state.is_router_up(node) {
            // A dead router does nothing and consumes nothing; traffic
            // offered at its source queue is unreachable and dropped.
            flush_idle_run(&mut idle_run, &mut tile.out.ops);
            drop_source_queue_tile(&mut tile.inj[k], &mut tile.out.ops);
            continue;
        }
        let idle = tile.fabric.occupancy(k) == 0 && tile.inj[k].backlog_flits() == 0;
        if idle && !shared.step_all {
            // Worklist skip: log the leakage as part of a coalesced run and
            // keep the gate phase exact. Nothing else a full walk does for
            // an idle node has any effect.
            match &mut idle_run {
                Some((_, to)) if *to == i => *to = i + 1,
                _ => {
                    flush_idle_run(&mut idle_run, &mut tile.out.ops);
                    idle_run = Some((i, i + 1));
                }
            }
            if !shared.gates_pristine {
                tile.gates[k].tick();
            }
            continue;
        }
        flush_idle_run(&mut idle_run, &mut tile.out.ops);
        // Leakage accrues every global cycle regardless of clock gating;
        // idle routers (empty buffers and source queue) may be power
        // gated down to a fraction of nominal leakage.
        let region = shared.region_by_node[i];
        let mut leak = shared.region_leakage_scale[region];
        if shared.power.idle_leakage_fraction < 1.0 && idle {
            leak *= shared.power.idle_leakage_fraction;
        }
        tile.out.ops.push(StatsOp::Leakage {
            links: shared.links_out[i],
            scale: leak,
        });
        if !tile.gates[k].tick() {
            continue; // clock-gated this cycle
        }
        let dynamic_scale = shared.region_dynamic_scale[region];
        events.clear();
        {
            let mut ctx = RouterCtx {
                topo: shared.topo,
                routing: shared.routing,
                power: shared.power,
                energy: EnergySink::Log(&mut tile.out.ops),
                dynamic_scale,
                faults: if shared.has_faults {
                    Some(shared.link_state)
                } else {
                    None
                },
                arb: shared.arb,
                tables: shared.tables,
            };
            tile.fabric.step_node(k, node, &mut ctx, &mut events);
        }
        for ev in events.drain(..) {
            match ev {
                RouterEvent::Forward { out_port, flit } => {
                    let to = shared
                        .topo
                        .neighbor(node, out_port)
                        .expect("router forwarded off the edge");
                    debug_assert!(
                        !shared.has_faults || shared.link_state.is_link_up(node, out_port),
                        "delivery scheduled across a dead link"
                    );
                    tile.out.deliveries.push(Delivery {
                        to,
                        in_port: out_port.opposite(),
                        flit,
                    });
                    tile.out.ops.push(StatsOp::Forward { node: i });
                    tile.out.ops.push(StatsOp::Energy {
                        event: PowerEvent::LinkTraversal,
                        scale: dynamic_scale,
                    });
                }
                RouterEvent::Eject { flit } => {
                    tile.out.ops.push(StatsOp::Eject { flit });
                }
                RouterEvent::Credit { in_port, vc } => {
                    tile.out.credits.push(CreditReturn {
                        at: node,
                        in_port,
                        vc,
                    });
                }
                RouterEvent::Drop { flit } => {
                    tile.out.ops.push(StatsOp::Drop { flit });
                }
            }
        }
        try_inject_tile(
            shared,
            &mut tile.fabric,
            k,
            &mut tile.inj[k],
            node,
            &mut tile.out.ops,
        );
    }
    flush_idle_run(&mut idle_run, &mut tile.out.ops);
    tile.out.events = events;
}

/// Try to move one flit from the node's source queue into the router's
/// Local input port, honoring VC ownership and credits (tile-local variant;
/// the injection and buffer-write stats land in the op log).
fn try_inject_tile(
    shared: &TileShared<'_>,
    fabric: &mut FabricTile<'_>,
    k: usize,
    q: &mut InjectionQueue,
    node: NodeId,
    ops: &mut Vec<StatsOp>,
) {
    let region = shared.region_by_node[node.0];
    let is_torus = shared.topo.kind() == TopologyKind::Torus;
    let cycle = shared.cycle;
    let scale = shared.region_dynamic_scale[region];

    let injected: Option<(Flit, bool)> = {
        if q.current.is_empty() {
            match q.pop_packet() {
                Some(p) => {
                    q.current = p.to_flits(cycle).into();
                    q.current_vc = None;
                }
                None => return,
            }
        }
        let head = q.current.front().expect("checked non-empty");
        let vc = match q.current_vc {
            Some(vc) => Some(vc),
            None => {
                debug_assert!(head.is_head(), "mid-packet without an assigned VC");
                // Head flit: claim a free local-input VC. Injected packets
                // are dateline class 0, so claim from the class-0 range
                // on tori.
                let limit = if is_torus {
                    q.vc_states.len() / 2
                } else {
                    q.vc_states.len()
                };
                match (0..limit).find(|&v| q.vc_states[v].is_free()) {
                    Some(vc) => {
                        q.vc_states[vc].owner = Some(head.packet);
                        q.current_vc = Some(vc);
                        Some(vc)
                    }
                    None => None,
                }
            }
        };
        match vc {
            Some(vc) if q.vc_states[vc].has_credit() => {
                let mut flit = q.current.pop_front().expect("checked non-empty");
                flit.vc = vc;
                q.vc_states[vc].credits -= 1;
                let is_tail = flit.is_tail();
                if is_tail {
                    q.vc_states[vc].owner = None;
                    q.current_vc = None;
                }
                Some((flit, is_tail))
            }
            _ => None,
        }
    };

    if let Some((flit, is_tail)) = injected {
        ops.push(StatsOp::Injection { region, is_tail });
        let mut ctx = RouterCtx {
            topo: shared.topo,
            routing: shared.routing,
            power: shared.power,
            energy: EnergySink::Log(ops),
            dynamic_scale: scale,
            faults: None,
            arb: shared.arb,
            tables: shared.tables,
        };
        fabric.accept(k, Port::Local, flit, &mut ctx);
    }
}

/// Drop everything waiting at a dead router's source queue: queued packets
/// and any mid-injection remnant that never reached the network.
fn drop_source_queue_tile(q: &mut InjectionQueue, ops: &mut Vec<StatsOp>) {
    while let Some(p) = q.pop_packet() {
        ops.push(StatsOp::SourceDrop {
            packets: 1,
            flits: p.len_flits as u64,
        });
    }
    if !q.current.is_empty() {
        // Possible only for a packet that had injected nothing when the
        // router died (otherwise the boundary purge already cleared it),
        // so it still counts as a whole dropped packet.
        ops.push(StatsOp::SourceDrop {
            packets: 1,
            flits: q.current.len() as u64,
        });
        q.current.clear();
        if let Some(vc) = q.current_vc.take() {
            q.vc_states[vc].owner = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::PacketId;
    use crate::traffic::TrafficPattern;

    fn small_config() -> SimConfig {
        SimConfig::default()
            .with_size(4, 4)
            .with_traffic(TrafficPattern::Uniform, 0.1)
            .with_regions(2, 2)
    }

    fn packet(id: u64, src: usize, dst: usize, len: u32, t: u64) -> Packet {
        Packet {
            id: PacketId(id),
            src: NodeId(src),
            dst: NodeId(dst),
            len_flits: len,
            created_at: t,
        }
    }

    #[test]
    fn single_packet_is_delivered() {
        let cfg = small_config();
        let mut net = Network::new(&cfg).unwrap();
        let mut stats = StatsCollector::new(net.regions().num_regions());
        net.offer(vec![packet(0, 0, 15, 5, 0)], &mut stats);
        for _ in 0..200 {
            net.step(&mut stats);
            if stats.ejected_packets == 1 {
                break;
            }
        }
        assert_eq!(stats.ejected_packets, 1, "packet should be delivered");
        assert_eq!(stats.ejected_flits, 5);
        assert_eq!(stats.injected_flits, 5);
        assert_eq!(net.in_flight(), 0);
        // XY route (0,0)->(3,3) is 6 hops; tail latency covers pipeline depth.
        assert!(stats.sum_hops as u32 >= 6);
        assert!(stats.avg_packet_latency() >= 6.0);
    }

    #[test]
    fn many_packets_all_delivered_xy() {
        let cfg = small_config();
        let mut net = Network::new(&cfg).unwrap();
        let mut stats = StatsCollector::new(net.regions().num_regions());
        let mut id = 0;
        for src in 0..16usize {
            for dst in 0..16usize {
                if src != dst {
                    net.offer(vec![packet(id, src, dst, 3, 0)], &mut stats);
                    id += 1;
                }
            }
        }
        for _ in 0..5000 {
            net.step(&mut stats);
            if net.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(stats.ejected_packets, id, "all-to-all traffic must drain");
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn adaptive_routing_drains_all_to_all() {
        for alg in [
            RoutingAlgorithm::OddEven,
            RoutingAlgorithm::WestFirst,
            RoutingAlgorithm::NorthLast,
            RoutingAlgorithm::NegativeFirst,
            RoutingAlgorithm::Yx,
        ] {
            let cfg = small_config().with_routing(alg);
            let mut net = Network::new(&cfg).unwrap();
            let mut stats = StatsCollector::new(net.regions().num_regions());
            let mut id = 0;
            for src in 0..16usize {
                for dst in 0..16usize {
                    if src != dst {
                        net.offer(vec![packet(id, src, dst, 4, 0)], &mut stats);
                        id += 1;
                    }
                }
            }
            for _ in 0..8000 {
                net.step(&mut stats);
                if net.in_flight() == 0 {
                    break;
                }
            }
            assert_eq!(
                stats.ejected_packets, id,
                "{alg:?} must drain all-to-all traffic"
            );
        }
    }

    #[test]
    fn torus_dor_drains_all_to_all() {
        let mut cfg = small_config().with_routing(RoutingAlgorithm::TorusDor);
        cfg.kind = TopologyKind::Torus;
        let mut net = Network::new(&cfg).unwrap();
        let mut stats = StatsCollector::new(net.regions().num_regions());
        let mut id = 0;
        for src in 0..16usize {
            for dst in 0..16usize {
                if src != dst {
                    net.offer(vec![packet(id, src, dst, 4, 0)], &mut stats);
                    id += 1;
                }
            }
        }
        for _ in 0..8000 {
            net.step(&mut stats);
            if net.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(
            stats.ejected_packets, id,
            "torus must drain all-to-all traffic"
        );
    }

    #[test]
    fn torus_min_adaptive_drains_all_to_all() {
        let cfg = small_config()
            .with_routing(RoutingAlgorithm::TorusMinAdaptive)
            .with_topology(TopologyKind::Torus);
        let mut net = Network::new(&cfg).unwrap();
        let mut stats = StatsCollector::new(net.regions().num_regions());
        let mut id = 0;
        for src in 0..16usize {
            for dst in 0..16usize {
                if src != dst {
                    net.offer(vec![packet(id, src, dst, 4, 0)], &mut stats);
                    id += 1;
                }
            }
        }
        for _ in 0..8000 {
            net.step(&mut stats);
            if net.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(
            stats.ejected_packets, id,
            "adaptive torus must drain all-to-all traffic"
        );
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn torus_min_adaptive_reroutes_around_a_dead_wrap_link() {
        // Kill the X wrap wire 3 -E-> 0 (row 0). DOR from 3 to 4=(0,1) needs
        // it and drops; the adaptive algorithm falls back to its south
        // candidate and delivers.
        let base = small_config()
            .with_topology(TopologyKind::Torus)
            .with_faults(link_fault(0, None, 3, Port::East));
        let run = |routing: RoutingAlgorithm| {
            let cfg = base.clone().with_routing(routing);
            let mut net = Network::new(&cfg).unwrap();
            let mut stats = StatsCollector::new(net.regions().num_regions());
            net.offer(vec![packet(0, 3, 4, 5, 0)], &mut stats);
            for _ in 0..400 {
                net.step(&mut stats);
                if net.in_flight() == 0 && stats.injected_flits == 5 {
                    break;
                }
            }
            (stats.ejected_packets, stats.dropped_packets)
        };
        assert_eq!(run(RoutingAlgorithm::TorusDor), (0, 1));
        assert_eq!(run(RoutingAlgorithm::TorusMinAdaptive), (1, 0));
    }

    #[test]
    fn low_vf_level_slows_delivery() {
        let cfg = small_config();
        let run = |level: usize| {
            let mut net = Network::new(&cfg).unwrap();
            net.set_all_levels(level).unwrap();
            let mut stats = StatsCollector::new(net.regions().num_regions());
            net.offer(vec![packet(0, 0, 15, 5, 0)], &mut stats);
            for c in 0..2000 {
                net.step(&mut stats);
                if stats.ejected_packets == 1 {
                    return c;
                }
            }
            panic!("packet not delivered at level {level}");
        };
        let fast = run(3);
        let slow = run(0);
        assert!(
            slow > fast * 2,
            "0.4x frequency should be much slower: fast={fast}, slow={slow}"
        );
    }

    #[test]
    fn low_vf_level_saves_energy_per_flit() {
        let cfg = small_config();
        let run = |level: usize| {
            let mut net = Network::new(&cfg).unwrap();
            net.set_all_levels(level).unwrap();
            let mut stats = StatsCollector::new(net.regions().num_regions());
            net.offer(vec![packet(0, 0, 15, 5, 0)], &mut stats);
            while stats.ejected_packets < 1 {
                net.step(&mut stats);
                assert!(net.cycle() < 5000);
            }
            stats.energy.dynamic_pj()
        };
        let hi = run(3);
        let lo = run(0);
        assert!(
            lo < hi * 0.5,
            "dynamic energy should scale with V²: hi={hi}, lo={lo}"
        );
    }

    #[test]
    fn region_levels_are_independent() {
        let cfg = small_config();
        let mut net = Network::new(&cfg).unwrap();
        net.set_region_level(0, 0).unwrap();
        net.set_region_level(3, 2).unwrap();
        assert_eq!(net.region_levels(), &[0, 3, 3, 2]);
        assert!(net.set_region_level(9, 0).is_err());
        assert!(net.set_region_level(0, 9).is_err());
    }

    #[test]
    fn routing_switch_validates_topology() {
        let cfg = small_config();
        let mut net = Network::new(&cfg).unwrap();
        assert!(net.set_routing(RoutingAlgorithm::OddEven).is_ok());
        assert_eq!(net.routing(), RoutingAlgorithm::OddEven);
        assert!(net.set_routing(RoutingAlgorithm::TorusDor).is_err());
    }

    #[test]
    fn occupancy_and_backlog_accounting() {
        let cfg = small_config();
        let mut net = Network::new(&cfg).unwrap();
        let mut stats = StatsCollector::new(net.regions().num_regions());
        net.offer(vec![packet(0, 0, 15, 5, 0)], &mut stats);
        assert_eq!(net.backlog(), 5);
        assert_eq!(net.occupancy(), 0);
        net.step(&mut stats);
        assert_eq!(
            net.in_flight(),
            5,
            "flits conserved between queue and buffers"
        );
        let cap: usize = net.region_capacity().iter().sum();
        assert_eq!(cap, 16 * 5 * cfg.num_vcs * cfg.vc_depth);
    }

    #[test]
    fn power_gating_cuts_idle_leakage() {
        let mut cfg = small_config();
        let run = |cfg: &SimConfig| {
            let mut net = Network::new(cfg).unwrap();
            let mut stats = StatsCollector::new(net.regions().num_regions());
            for _ in 0..100 {
                net.step(&mut stats); // fully idle network
            }
            stats.energy.leakage_pj()
        };
        let nominal = run(&cfg);
        cfg.power = crate::power::PowerModel::with_power_gating();
        let gated = run(&cfg);
        assert!(
            (gated - nominal * 0.2).abs() < nominal * 0.01,
            "idle gated leakage {gated} should be ~20% of {nominal}"
        );
    }

    #[test]
    fn throttle_overrides_requested_level() {
        use crate::dvfs::ThrottleEvent;
        let cfg = small_config().with_throttles(vec![ThrottleEvent {
            start: 50,
            duration: 100,
            region: 0,
            level: 0,
        }]);
        let mut net = Network::new(&cfg).unwrap();
        let mut stats = StatsCollector::new(net.regions().num_regions());
        assert_eq!(net.effective_region_levels(), &[3, 3, 3, 3]);
        for _ in 0..60 {
            net.step(&mut stats);
        }
        assert!(net.throttle_active());
        assert_eq!(
            net.region_levels(),
            &[3, 3, 3, 3],
            "requested level unchanged"
        );
        assert_eq!(
            net.effective_region_levels(),
            &[0, 3, 3, 3],
            "region 0 throttled"
        );
        // The controller cannot override the emergency.
        net.set_region_level(0, 3).unwrap();
        net.step(&mut stats);
        assert_eq!(net.effective_region_levels()[0], 0);
        // After the window the requested level is restored.
        for _ in 0..100 {
            net.step(&mut stats);
        }
        assert!(!net.throttle_active());
        assert_eq!(net.effective_region_levels(), &[3, 3, 3, 3]);
    }

    #[test]
    fn throttle_slows_the_region() {
        use crate::dvfs::ThrottleEvent;
        let run = |throttled: bool| {
            let mut cfg = small_config();
            if throttled {
                cfg = cfg.with_throttles(vec![ThrottleEvent {
                    start: 0,
                    duration: 10_000,
                    region: 0,
                    level: 0,
                }]);
            }
            let mut net = Network::new(&cfg).unwrap();
            let mut stats = StatsCollector::new(net.regions().num_regions());
            // Packet crossing region 0 (node 0 is in region 0).
            net.offer(vec![packet(0, 0, 5, 5, 0)], &mut stats);
            for c in 0..2000 {
                net.step(&mut stats);
                if stats.ejected_packets == 1 {
                    return c;
                }
            }
            panic!("packet not delivered");
        };
        assert!(
            run(true) > run(false) * 2,
            "throttled region must be much slower"
        );
    }

    fn link_fault(start: u64, duration: Option<u64>, node: usize, port: Port) -> crate::FaultPlan {
        crate::FaultPlan::new(vec![crate::FaultEvent {
            start,
            duration,
            target: crate::FaultTarget::Link {
                node: NodeId(node),
                port,
            },
        }])
        .unwrap()
    }

    #[test]
    fn xy_drops_packets_that_need_a_dead_link() {
        // XY from 0 to 3 must go east along row 0; kill link 1<->2.
        let cfg = small_config().with_faults(link_fault(0, None, 1, Port::East));
        let mut net = Network::new(&cfg).unwrap();
        let mut stats = StatsCollector::new(net.regions().num_regions());
        net.offer(vec![packet(0, 0, 3, 5, 0)], &mut stats);
        for _ in 0..300 {
            net.step(&mut stats);
            if net.in_flight() == 0 && stats.injected_flits == 5 {
                break;
            }
        }
        assert_eq!(stats.ejected_packets, 0, "no route around a dead XY link");
        assert_eq!(stats.dropped_packets, 1);
        assert_eq!(stats.dropped_flits, 5);
        assert_eq!(net.in_flight(), 0, "dropped packets must drain, not wedge");
        assert!(stats.sum_dead_links > 0.0, "telemetry sees the dead link");
    }

    #[test]
    fn adaptive_routing_reroutes_around_a_dead_link() {
        // West-First from 0 to 15 may route south first; kill link 1<->2 on
        // row 0 — a minimal alternative exists, so the packet is delivered.
        let cfg = small_config()
            .with_routing(RoutingAlgorithm::WestFirst)
            .with_faults(link_fault(0, None, 1, Port::East));
        let mut net = Network::new(&cfg).unwrap();
        let mut stats = StatsCollector::new(net.regions().num_regions());
        net.offer(vec![packet(0, 0, 15, 5, 0)], &mut stats);
        for _ in 0..300 {
            net.step(&mut stats);
            if stats.ejected_packets == 1 {
                break;
            }
        }
        assert_eq!(stats.ejected_packets, 1, "adaptive routing must reroute");
        assert_eq!(stats.dropped_packets, 0);
    }

    #[test]
    fn mid_packet_link_death_purges_the_severed_packet() {
        // Let the packet start crossing 0->1, then kill the link mid-flight:
        // the whole packet (both halves) is purged and counted dropped, and
        // the fabric keeps working for later traffic on other routes.
        let cfg = small_config().with_faults(link_fault(8, None, 0, Port::East));
        let mut net = Network::new(&cfg).unwrap();
        let mut stats = StatsCollector::new(net.regions().num_regions());
        net.offer(vec![packet(0, 0, 3, 8, 0)], &mut stats);
        for _ in 0..400 {
            net.step(&mut stats);
        }
        assert_eq!(stats.ejected_packets, 0);
        assert_eq!(stats.dropped_packets, 1);
        assert_eq!(
            stats.dropped_flits, 8,
            "every flit of the severed packet is accounted for"
        );
        assert_eq!(net.in_flight(), 0);
        // The fabric still delivers traffic that avoids the dead link.
        net.offer(vec![packet(1, 4, 7, 5, 400)], &mut stats);
        for _ in 0..300 {
            net.step(&mut stats);
            if stats.ejected_packets == 1 {
                break;
            }
        }
        assert_eq!(stats.ejected_packets, 1, "surviving fabric must still work");
    }

    #[test]
    fn transient_fault_heals_and_traffic_resumes() {
        let cfg = small_config().with_faults(link_fault(0, Some(100), 1, Port::East));
        let mut net = Network::new(&cfg).unwrap();
        let mut stats = StatsCollector::new(net.regions().num_regions());
        // During the fault: XY traffic across it drops.
        net.offer(vec![packet(0, 0, 3, 5, 0)], &mut stats);
        for _ in 0..100 {
            net.step(&mut stats);
        }
        assert_eq!(stats.dropped_packets, 1);
        assert!(!net.faults().is_link_up(NodeId(1), Port::East));
        // After healing: the same route works again.
        net.offer(vec![packet(1, 0, 3, 5, 100)], &mut stats);
        for _ in 0..300 {
            net.step(&mut stats);
            if stats.ejected_packets == 1 {
                break;
            }
        }
        assert!(
            net.faults().is_link_up(NodeId(1), Port::East),
            "link healed"
        );
        assert_eq!(stats.ejected_packets, 1, "healed link must carry traffic");
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn router_fault_drops_traffic_from_and_to_it() {
        let plan = crate::FaultPlan::new(vec![crate::FaultEvent {
            start: 0,
            duration: None,
            target: crate::FaultTarget::Router { node: NodeId(5) },
        }])
        .unwrap();
        let cfg = small_config().with_faults(plan);
        let mut net = Network::new(&cfg).unwrap();
        let mut stats = StatsCollector::new(net.regions().num_regions());
        // One packet from the dead router, one to it, one unrelated.
        net.offer(
            vec![
                packet(0, 5, 3, 5, 0),
                packet(1, 0, 5, 5, 0),
                packet(2, 12, 15, 5, 0),
            ],
            &mut stats,
        );
        for _ in 0..500 {
            net.step(&mut stats);
            if net.in_flight() == 0 && stats.ejected_packets == 1 {
                break;
            }
        }
        assert_eq!(
            stats.ejected_packets, 1,
            "only the unrelated packet arrives"
        );
        assert_eq!(stats.dropped_packets, 2);
        assert_eq!(net.in_flight(), 0);
        assert!(!net.faults().is_router_up(NodeId(5)));
    }

    #[test]
    fn fault_free_plan_changes_nothing() {
        // An empty plan must be byte-for-byte the default configuration, so
        // the fault hook cannot perturb healthy-fabric results.
        let cfg = small_config();
        let with_empty = small_config().with_faults(crate::FaultPlan::empty());
        assert_eq!(cfg, with_empty);
    }

    #[test]
    fn energy_grows_every_cycle_from_leakage() {
        let cfg = small_config();
        let mut net = Network::new(&cfg).unwrap();
        let mut stats = StatsCollector::new(net.regions().num_regions());
        net.step(&mut stats);
        let e1 = stats.energy.leakage_pj();
        net.step(&mut stats);
        let e2 = stats.energy.leakage_pj();
        assert!(e1 > 0.0 && e2 > e1);
    }
}
