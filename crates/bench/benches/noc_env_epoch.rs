//! Criterion bench: one NocEnv control-epoch step (simulate 500 cycles +
//! encode state + score reward) — the inner loop of DRL training.

use criterion::{criterion_group, criterion_main, Criterion};
use noc_selfconf::{ActionSpace, NocEnv, NocEnvConfig, RewardConfig};
use noc_sim::{SimConfig, TrafficPattern};
use rl::Environment;
use std::hint::black_box;

fn bench_env_epoch(c: &mut Criterion) {
    let sim = SimConfig::default()
        .with_size(4, 4)
        .with_traffic(TrafficPattern::Uniform, 0.1)
        .with_regions(2, 2);
    let mut env = NocEnv::new(NocEnvConfig {
        action_space: ActionSpace::PerRegionDelta {
            num_regions: 4,
            num_levels: 4,
        },
        sim,
        epoch_cycles: 500,
        epochs_per_episode: usize::MAX / 2, // never terminate inside the bench
        reward: RewardConfig::default(),
        traffic_menu: vec![],
        seed: 0,
    })
    .expect("valid environment");
    env.reset();
    let mut action = 0usize;
    c.bench_function("noc_env_epoch_4x4_500cycles", |b| {
        b.iter(|| {
            action = (action + 1) % env.num_actions();
            black_box(env.step(action));
        })
    });
}

criterion_group!(benches, bench_env_epoch);
criterion_main!(benches);
