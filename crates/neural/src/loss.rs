//! Loss functions. Each returns the scalar loss and the gradient with
//! respect to the prediction, averaged over the batch (rows).

use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Supported losses.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error: `mean((pred - target)²) / 2`.
    Mse,
    /// Huber loss with threshold `delta`: quadratic near zero, linear in the
    /// tails. The standard DQN choice — bounds the TD-error gradient.
    Huber {
        /// Transition point between the quadratic and linear regimes.
        delta: f32,
    },
}

impl Loss {
    /// Compute `(loss, dloss/dpred)` for a batch.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn compute(self, pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
        assert_eq!(
            (pred.rows(), pred.cols()),
            (target.rows(), target.cols()),
            "loss shape mismatch"
        );
        let n = pred.rows() as f32;
        let mut grad = Matrix::zeros(pred.rows(), pred.cols());
        let mut loss = 0.0f32;
        for (i, (&p, &t)) in pred.as_slice().iter().zip(target.as_slice()).enumerate() {
            let e = p - t;
            let (l, g) = match self {
                Loss::Mse => (0.5 * e * e, e),
                Loss::Huber { delta } => {
                    if e.abs() <= delta {
                        (0.5 * e * e, e)
                    } else {
                        (delta * (e.abs() - 0.5 * delta), delta * e.signum())
                    }
                }
            };
            loss += l;
            grad.as_mut_slice()[i] = g / n;
        }
        (loss / n, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_on_exact_prediction_is_zero() {
        let p = Matrix::row(vec![1.0, 2.0]);
        let (l, g) = Loss::Mse.compute(&p, &p.clone());
        assert_eq!(l, 0.0);
        assert!(g.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mse_value_and_gradient() {
        let p = Matrix::row(vec![3.0]);
        let t = Matrix::row(vec![1.0]);
        let (l, g) = Loss::Mse.compute(&p, &t);
        assert_eq!(l, 2.0); // 0.5 * 2²
        assert_eq!(g.as_slice(), &[2.0]);
    }

    #[test]
    fn huber_is_quadratic_inside_delta() {
        let p = Matrix::row(vec![0.5]);
        let t = Matrix::row(vec![0.0]);
        let (l, g) = Loss::Huber { delta: 1.0 }.compute(&p, &t);
        assert!((l - 0.125).abs() < 1e-7);
        assert_eq!(g.as_slice(), &[0.5]);
    }

    #[test]
    fn huber_gradient_is_clipped_outside_delta() {
        let p = Matrix::row(vec![10.0, -10.0]);
        let t = Matrix::row(vec![0.0, 0.0]);
        let (_, g) = Loss::Huber { delta: 1.0 }.compute(&p, &t);
        // Averaged over batch of 1 row => /1; two columns share the row.
        assert_eq!(g.as_slice(), &[1.0, -1.0]);
    }

    #[test]
    fn batch_averaging_divides_gradient() {
        let p = Matrix::from_vec(2, 1, vec![2.0, 2.0]);
        let t = Matrix::from_vec(2, 1, vec![0.0, 0.0]);
        let (l, g) = Loss::Mse.compute(&p, &t);
        assert_eq!(l, 2.0); // (2 + 2) / 2
        assert_eq!(g.as_slice(), &[1.0, 1.0]); // 2/2 each
    }

    /// Numerical gradient check for both losses.
    #[test]
    fn gradients_match_numerical() {
        let h = 1e-3f32;
        for loss in [Loss::Mse, Loss::Huber { delta: 1.0 }] {
            for &x in &[-2.0f32, -0.4, 0.3, 1.7] {
                let t = Matrix::row(vec![0.25]);
                let (_, g) = loss.compute(&Matrix::row(vec![x]), &t);
                let (lp, _) = loss.compute(&Matrix::row(vec![x + h]), &t);
                let (lm, _) = loss.compute(&Matrix::row(vec![x - h]), &t);
                let num = (lp - lm) / (2.0 * h);
                assert!(
                    (num - g.get(0, 0)).abs() < 1e-2,
                    "{loss:?} at {x}: numerical {num} vs analytic {}",
                    g.get(0, 0)
                );
            }
        }
    }
}
