//! The simulation driver: couples a [`Network`] with a [`TrafficGenerator`]
//! and a [`StatsCollector`], and provides the two execution modes the
//! evaluation uses:
//!
//! * [`Simulator::run_epoch`] — run a fixed control epoch and return its
//!   [`WindowMetrics`]; this is the interface the self-configuration agent
//!   drives.
//! * [`Simulator::run_classic`] — the textbook warmup / measure / drain
//!   methodology used for latency-vs-injection-rate curves.

use crate::config::SimConfig;
use crate::error::SimResult;
use crate::network::Network;
use crate::routing::RoutingAlgorithm;
use crate::stats::{StatsCollector, WindowMetrics};
use crate::traffic::{TrafficGenerator, TrafficSpec};
use serde::{Deserialize, Serialize};

/// Outcome of a classic warmup/measure/drain run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Metrics of the measurement window (latency restricted to packets
    /// created inside it; the drain phase lets those packets finish).
    pub window: WindowMetrics,
    /// Packets neither delivered nor dropped within the drain budget
    /// (exact: fully-injected packets minus terminal packets; packets still
    /// mid-injection in a source queue are not counted).
    pub unfinished_packets: u64,
    /// Whether the run is considered saturated: source backlog kept growing
    /// through the measurement window.
    pub saturated: bool,
}

/// A complete simulation instance.
#[derive(Debug)]
pub struct Simulator {
    config: SimConfig,
    network: Network,
    traffic: TrafficGenerator,
    stats: StatsCollector,
}

impl Simulator {
    /// Build a simulator from a configuration.
    ///
    /// # Errors
    /// Returns an error if the configuration is invalid.
    pub fn new(config: SimConfig) -> SimResult<Self> {
        let network = Network::new(&config)?;
        let topo = network.topology().clone();
        let traffic = TrafficGenerator::new(
            &topo,
            config.traffic.clone(),
            config.packet_len,
            config.seed,
        )?;
        let stats = StatsCollector::new(network.regions().num_regions());
        Ok(Simulator {
            config,
            network,
            traffic,
            stats,
        })
    }

    /// The configuration this simulator was built from.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The network (for occupancy/level inspection).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Force the cycle loop to step every router every cycle, disabling the
    /// active-router worklist (see [`Network::set_step_all`]). Results must
    /// be byte-identical either way; the differential tests pin that.
    pub fn set_step_all(&mut self, step_all: bool) {
        self.network.set_step_all(step_all);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &StatsCollector {
        &self.stats
    }

    /// Current global cycle.
    pub fn cycle(&self) -> u64 {
        self.network.cycle()
    }

    /// Mean packet length in flits of the configured traffic: the workload's
    /// cycle-weighted [`crate::traffic::LengthSpec`] mean, with the global
    /// `packet_len` standing in for phases without a length axis (and for
    /// trace-driven traffic, whose lengths the trace itself carries).
    fn mean_packet_len(&self) -> f64 {
        self.config
            .traffic
            .workload()
            .map_or(f64::from(self.config.packet_len), |w| {
                w.mean_len_flits(self.config.packet_len)
            })
    }

    /// Set one DVFS region's V/F level.
    ///
    /// # Errors
    /// Returns an error for out-of-range indices.
    pub fn set_region_level(&mut self, region: usize, level: usize) -> SimResult<()> {
        self.network.set_region_level(region, level)
    }

    /// Set every region's V/F level.
    ///
    /// # Errors
    /// Returns an error for an out-of-range level.
    pub fn set_all_levels(&mut self, level: usize) -> SimResult<()> {
        self.network.set_all_levels(level)
    }

    /// Current per-region levels.
    pub fn region_levels(&self) -> &[usize] {
        self.network.region_levels()
    }

    /// Switch the routing algorithm at runtime.
    ///
    /// # Errors
    /// Returns an error if the algorithm does not support the topology.
    pub fn set_routing(&mut self, routing: RoutingAlgorithm) -> SimResult<()> {
        self.network.set_routing(routing)
    }

    /// Replace the traffic specification at runtime.
    ///
    /// # Errors
    /// Returns an error if the spec is invalid for the topology.
    pub fn set_traffic(&mut self, spec: TrafficSpec) -> SimResult<()> {
        self.traffic.set_spec(self.network.topology(), spec)
    }

    /// Advance one cycle: generate traffic, then step the network. The
    /// offered-packet count and the workload phase in force are recorded so
    /// window metrics can report burstiness and per-phase buckets.
    pub fn step(&mut self) {
        let t = self.network.cycle();
        let topo = self.network.topology().clone();
        let packets = self.traffic.tick(&topo, t);
        self.stats
            .record_cycle_offered(self.traffic.current_phase(), packets.len() as u64);
        self.network.offer(packets, &mut self.stats);
        self.network.step(&mut self.stats);
    }

    /// Run `cycles` cycles.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    /// Run one control epoch of `cycles` cycles and return its metrics.
    pub fn run_epoch(&mut self, cycles: u64) -> WindowMetrics {
        let before = self.stats.snapshot();
        self.run(cycles);
        let after = self.stats.snapshot();
        WindowMetrics::between(&before, &after, self.network.topology().num_nodes())
    }

    /// Classic methodology: warm up for `warmup` cycles, measure for
    /// `measure` cycles (only packets created in the window count toward
    /// latency), then drain for up to `drain_max` extra cycles so windowed
    /// packets can finish.
    pub fn run_classic(&mut self, warmup: u64, measure: u64, drain_max: u64) -> RunSummary {
        self.run(warmup);
        let t0 = self.cycle();
        self.stats.set_latency_window(t0, t0 + measure);
        let backlog_at_start = self.network.backlog();
        let before = self.stats.snapshot();
        self.run(measure);
        let backlog_at_end = self.network.backlog();
        let after_measure = self.stats.snapshot();
        let nodes = self.network.topology().num_nodes();
        // Offered load during the window, to compare against acceptance.
        let measured = WindowMetrics::between(&before, &after_measure, nodes);

        // Drain: stop offering *new* measurement credit (window is already
        // bounded) and let in-flight windowed packets finish.
        for _ in 0..drain_max {
            if self.network.in_flight() == 0 {
                break;
            }
            self.step();
        }
        let after_drain = self.stats.snapshot();
        let mut window = WindowMetrics::between(&before, &after_drain, nodes);
        // Rate/throughput figures must come from the measurement window, not
        // the drain tail.
        window.cycles = measured.cycles;
        window.throughput = measured.throughput;
        window.injection_rate = measured.injection_rate;
        window.avg_occupancy = measured.avg_occupancy;
        window.region_occupancy = measured.region_occupancy.clone();
        window.avg_backlog = measured.avg_backlog;

        // Saturation heuristic: backlog (a flit count) grew by more than one
        // packet per node over the window, where "one packet" is the
        // workload's mean length — a `len8` phase is allowed 8x the flit
        // growth a single-flit one is.
        let growth = backlog_at_end as f64 - backlog_at_start as f64;
        let saturated = growth > self.mean_packet_len() * nodes as f64;
        // Dropped packets (fault handling) are terminal, not unfinished. The
        // drop counter can also cover packets that never fully injected
        // (dead-source or purged mid-injection packets), so saturate rather
        // than underflow. Packet counters, not flits/packet_len: variable
        // lengths make the flit quotient meaningless.
        let unfinished = window
            .injected_packets
            .saturating_sub(window.ejected_packets)
            .saturating_sub(window.dropped_packets);
        RunSummary {
            window,
            unfinished_packets: unfinished,
            saturated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficPattern;

    fn sim(rate: f64) -> Simulator {
        Simulator::new(
            SimConfig::default()
                .with_size(4, 4)
                .with_traffic(TrafficPattern::Uniform, rate)
                .with_regions(2, 2),
        )
        .unwrap()
    }

    #[test]
    fn light_load_has_low_latency() {
        let mut s = sim(0.05);
        let summary = s.run_classic(1000, 3000, 3000);
        assert!(!summary.saturated);
        assert!(
            summary.window.latency_samples > 50,
            "should complete many packets"
        );
        // Zero-load latency on a 4x4 mesh is ~10-20 cycles; light load should
        // stay well under 60.
        assert!(
            summary.window.avg_packet_latency < 60.0,
            "latency {} too high for light load",
            summary.window.avg_packet_latency
        );
    }

    #[test]
    fn throughput_tracks_offered_load_below_saturation() {
        let mut s = sim(0.10);
        let summary = s.run_classic(1000, 4000, 4000);
        assert!(!summary.saturated);
        let err = (summary.window.throughput - 0.10).abs() / 0.10;
        assert!(
            err < 0.15,
            "throughput {} should track offered 0.10",
            summary.window.throughput
        );
    }

    #[test]
    fn heavy_load_saturates() {
        let mut s = sim(0.95);
        let summary = s.run_classic(500, 2000, 500);
        assert!(
            summary.saturated,
            "0.95 flits/node/cycle must saturate a 4x4 mesh"
        );
    }

    #[test]
    fn latency_increases_with_load() {
        let lat = |rate| {
            let mut s = sim(rate);
            s.run_classic(1000, 3000, 3000).window.avg_packet_latency
        };
        let low = lat(0.02);
        let high = lat(0.30);
        assert!(
            high > low,
            "latency must grow with load: low={low}, high={high}"
        );
    }

    #[test]
    fn epoch_metrics_accumulate() {
        let mut s = sim(0.1);
        let m1 = s.run_epoch(500);
        assert_eq!(m1.cycles, 500);
        assert!(m1.injected_flits > 0);
        let m2 = s.run_epoch(500);
        assert_eq!(s.cycle(), 1000);
        assert!(m2.injected_flits > 0);
    }

    #[test]
    fn runtime_reconfiguration_applies() {
        let mut s = sim(0.1);
        s.set_all_levels(0).unwrap();
        assert_eq!(s.region_levels(), &[0, 0, 0, 0]);
        s.set_region_level(1, 3).unwrap();
        assert_eq!(s.region_levels(), &[0, 3, 0, 0]);
        s.set_routing(RoutingAlgorithm::OddEven).unwrap();
        s.set_traffic(TrafficSpec::stationary(TrafficPattern::Transpose, 0.2))
            .unwrap();
        s.run(100);
        assert!(s.stats().injected_flits > 0);
    }

    #[test]
    fn epoch_metrics_carry_phase_buckets_and_burstiness() {
        use crate::traffic::{InjectionProcess, WorkloadPhase, WorkloadSpec};
        let spec = TrafficSpec::Workload(WorkloadSpec::new(vec![
            WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.05, 300),
            WorkloadPhase::new(
                TrafficPattern::Uniform,
                InjectionProcess::Bursty {
                    rate_on: 0.4,
                    switch: 0.02,
                },
                300,
            ),
        ]));
        let mut s = Simulator::new(
            SimConfig::default()
                .with_size(4, 4)
                .with_regions(2, 2)
                .with_traffic_spec(spec),
        )
        .unwrap();
        let m = s.run_epoch(600);
        assert_eq!(m.phase_cycles, vec![300, 300]);
        assert_eq!(
            m.phase_offered_packets.iter().sum::<u64>(),
            m.offered_packets
        );
        assert!(
            m.phase_offered_packets[1] > m.phase_offered_packets[0],
            "the bursty phase offers ~4x the load: {:?}",
            m.phase_offered_packets
        );
        // The second epoch repeats the schedule and sees both phases again.
        let m2 = s.run_epoch(600);
        assert_eq!(m2.phase_cycles, vec![300, 300]);
        // Bursty traffic reads as burstier than a pure-Bernoulli epoch.
        let mut bern = Simulator::new(
            SimConfig::default()
                .with_size(4, 4)
                .with_regions(2, 2)
                .with_traffic(TrafficPattern::Uniform, 0.12),
        )
        .unwrap();
        let mb = bern.run_epoch(600);
        assert!(
            m.injection_burstiness > 1.5 * mb.injection_burstiness,
            "bursty {} vs bernoulli {}",
            m.injection_burstiness,
            mb.injection_burstiness
        );
    }

    #[test]
    fn variable_length_run_drains_with_exact_packet_accounting() {
        use crate::traffic::{LengthSpec, WorkloadPhase, WorkloadSpec};
        // One phase drawing lengths uniformly in 1..=8: the injected flit
        // count is no multiple of the nominal packet_len, so the old
        // `flits / packet_len` quotient would misreport unfinished packets.
        let spec = TrafficSpec::Workload(WorkloadSpec::new(vec![WorkloadPhase::bernoulli(
            TrafficPattern::Uniform,
            0.06,
            0,
        )
        .with_length(LengthSpec::Uniform { min: 1, max: 8 })]));
        let mut s = Simulator::new(
            SimConfig::default()
                .with_size(4, 4)
                .with_regions(2, 2)
                .with_traffic_spec(spec),
        )
        .unwrap();
        let summary = s.run_classic(500, 2000, 20_000);
        assert!(!summary.saturated, "0.06 flits/node/cycle is light load");
        assert_eq!(
            summary.unfinished_packets, 0,
            "light load must drain fully under variable lengths"
        );
        assert!(summary.window.injected_packets > 0);
        let st = s.stats();
        assert_eq!(st.dropped_flits, 0);
        assert!(st.injected_packets > 0);
        assert_ne!(
            st.injected_flits,
            st.injected_packets * u64::from(s.config().packet_len),
            "lengths must actually vary (not all equal to packet_len)"
        );
        // Exact packet balance after a full drain: every injected packet
        // either ejected or (here, faultlessly) none dropped.
        assert_eq!(st.injected_packets, st.ejected_packets);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut s = sim(0.15);
            s.run(2000);
            (
                s.stats().injected_flits,
                s.stats().ejected_flits,
                s.stats().sum_packet_latency,
            )
        };
        assert_eq!(run(), run(), "same seed must reproduce identical runs");
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut s = Simulator::new(
                SimConfig::default()
                    .with_size(4, 4)
                    .with_traffic(TrafficPattern::Uniform, 0.15)
                    .with_seed(seed),
            )
            .unwrap();
            s.run(1000);
            s.stats().injected_flits
        };
        assert_ne!(run(1), run(2));
    }
}
