//! # noc-selfconf — deep-RL self-configuration for NoCs
//!
//! The primary contribution of *Deep Reinforcement Learning for
//! Self-Configurable NoC* (SOCC 2020), reproduced: a runtime agent that
//! observes per-epoch NoC telemetry and reconfigures per-region DVFS levels
//! (and optionally the routing algorithm) to trade latency against energy.
//!
//! * [`state`] — telemetry → observation vector.
//! * [`action`] — discrete action → configuration change.
//! * [`reward`] — the latency/energy/throughput objective.
//! * [`mod@env`] — `NocEnv`, the Gym-style environment over the simulator.
//! * [`controller`] — the DRL policy plus static / threshold / tabular
//!   baselines behind one `Controller` trait.
//! * [`training`] — training and controller-evaluation drivers.
//! * [`sweep`] — the parallel scenario-sweep engine: cartesian grids of
//!   configurations fanned out over a thread pool into one deterministic
//!   aggregated report.
//! * [`serve`] — sweep-as-a-service: a persistent TCP daemon with a
//!   content-addressed result cache, single-flight deduplication, and
//!   admission-controlled fair-share scheduling.
//! * [`zoo`] — the policy zoo: one versioned artifact format for trained
//!   policies (legacy shapes still load), population training over variant ×
//!   scenario grids, and the tournament generalization matrix.
//!
//! ```no_run
//! use noc_selfconf::{train_drl, NocEnvConfig};
//! use rl::{DqnConfig, TrainConfig};
//!
//! # fn main() -> Result<(), noc_sim::SimError> {
//! let policy = train_drl(
//!     NocEnvConfig::default(),
//!     DqnConfig::default(),
//!     TrainConfig { episodes: 150, max_steps: 40, ..TrainConfig::default() },
//! )?;
//! println!("trained for {} gradient steps", policy.agent.train_steps());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod action;
pub mod controller;
pub mod env;
pub mod par;
pub mod reward;
pub mod serve;
pub mod state;
pub mod sweep;
pub mod training;
pub mod zoo;

pub use action::ActionSpace;
pub use controller::{
    ControlDecision, Controller, DrlController, StaticController, TabularController,
    ThresholdController,
};
pub use env::{standard_traffic_menu, NocEnv, NocEnvConfig};
pub use par::{default_threads, parallel_map};
pub use reward::RewardConfig;
pub use serve::{Daemon, ResultCache, ServeClient, ServeConfig};
pub use state::StateEncoder;
pub use sweep::{Scenario, ScenarioResult, SweepAggregate, SweepGrid, SweepReport};
pub use training::{
    aggregate_run, run_controller, train_drl, train_tabular, ControllerRun, RunAggregate,
    TrainedPolicy,
};
pub use zoo::{
    dqn_config_hash, load_zoo, tabular_config_hash, tournament_matrix, train_grid, PolicyArtifact,
    PolicyKind, ScenarioFamily, TournamentConfig, TournamentReport, ZooError, ZooGrid, ZooManifest,
};
