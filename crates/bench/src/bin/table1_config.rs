//! Table 1 — NoC and simulator configuration.

use noc_bench::{configs, print_table, save_markdown};

fn main() {
    let cfg = configs::mesh8();
    let vf_rows: Vec<String> = cfg
        .vf_table
        .levels()
        .iter()
        .enumerate()
        .map(|(i, l)| format!("L{i}: {:.1} V @ {:.1}× f_nom", l.voltage, l.freq_scale))
        .collect();
    let rows = vec![
        vec!["Topology".into(), format!("{}×{} {:?}", cfg.width, cfg.height, cfg.kind)],
        vec!["Routing".into(), format!("{:?}", cfg.routing)],
        vec!["Virtual channels / port".into(), cfg.num_vcs.to_string()],
        vec!["Buffer depth / VC".into(), format!("{} flits", cfg.vc_depth)],
        vec!["Packet length".into(), format!("{} flits", cfg.packet_len)],
        vec!["Switching".into(), "wormhole, credit-based flow control".into()],
        vec!["Router pipeline".into(), "3 stages (RC, VA, SA/ST), 1-cycle links".into()],
        vec!["DVFS regions".into(), format!("{}×{}", cfg.regions_x, cfg.regions_y)],
        vec!["V/F levels".into(), vf_rows.join("; ")],
        vec![
            "Power model".into(),
            format!(
                "event energy (pJ): buf W {:.2} / R {:.2}, xbar {:.2}, link {:.2}; leakage {:.2}/router/cycle",
                cfg.power.e_buffer_write,
                cfg.power.e_buffer_read,
                cfg.power.e_xbar,
                cfg.power.e_link,
                cfg.power.p_leak_router
            ),
        ],
        vec!["Control epoch".into(), "500 cycles".into()],
    ];
    let md = print_table(
        "Table 1 — NoC configuration",
        &["Parameter", "Value"],
        &rows,
    );
    save_markdown("table1_config", &md);
}
