//! Determinism and equivalence guarantees of the scenario-sweep engine.

use noc_selfconf::{SweepGrid, SweepReport};
use noc_sim::{
    InjectionProcess, RoutingAlgorithm, SimConfig, TopologyKind, TrafficPattern, WorkloadSpec,
};

/// A fast grid: 8 scenarios on small meshes with short windows.
fn quick_grid() -> SweepGrid {
    SweepGrid {
        base: SimConfig::default().with_regions(2, 2),
        sizes: vec![(4, 4)],
        topologies: vec![TopologyKind::Mesh],
        patterns: vec![TrafficPattern::Uniform, TrafficPattern::Transpose],
        rates: vec![0.05, 0.10],
        routings: vec![RoutingAlgorithm::Xy, RoutingAlgorithm::OddEven],
        levels: vec![None],
        faults: vec![0],
        workloads: vec![],
        partitions: 1,
        warmup: 200,
        measure: 500,
        drain: 500,
        base_seed: 7,
    }
}

fn to_json(report: &SweepReport) -> String {
    serde_json::to_string_pretty(report).expect("report serializes")
}

#[test]
fn repeated_runs_are_byte_identical() {
    let grid = quick_grid();
    let a = to_json(&grid.run(4).expect("valid grid"));
    let b = to_json(&grid.run(4).expect("valid grid"));
    assert_eq!(
        a, b,
        "same grid + seeds must reproduce the same report bytes"
    );
}

#[test]
fn parallel_equals_serial() {
    let grid = quick_grid();
    let parallel = grid.run(4).expect("valid grid");
    let serial = grid.run_serial().expect("valid grid");
    assert_eq!(
        to_json(&parallel),
        to_json(&serial),
        "thread scheduling must not leak into results"
    );
    // Spot-check structured equality too, scenario by scenario.
    assert_eq!(parallel.scenarios.len(), serial.scenarios.len());
    for (p, s) in parallel.scenarios.iter().zip(&serial.scenarios) {
        assert_eq!(
            p, s,
            "scenario {} diverged between parallel and serial",
            p.label
        );
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let grid = quick_grid();
    let one = to_json(&grid.run(1).expect("valid grid"));
    let three = to_json(&grid.run(3).expect("valid grid"));
    let many = to_json(&grid.run(64).expect("valid grid"));
    assert_eq!(one, three);
    assert_eq!(
        one, many,
        "oversubscribed pools must still be deterministic"
    );
}

/// Partition count is a pure execution strategy: the same grid swept with
/// 1, 2, and 4 partitions per scenario produces byte-identical report
/// bytes. `partitions` never serializes, and partitioned stepping replays
/// the serial stats order exactly — so the reports cannot differ even in
/// the last f64 bit. A torus + fault axis rides along to cover the
/// boundary-exchange and rerouting paths, not just the healthy mesh.
#[test]
fn partition_count_does_not_change_report_bytes() {
    let grid = |partitions: usize| SweepGrid {
        topologies: vec![TopologyKind::Mesh, TopologyKind::Torus],
        patterns: vec![TrafficPattern::Uniform],
        rates: vec![0.10],
        routings: vec![RoutingAlgorithm::Xy],
        faults: vec![0, 2],
        partitions,
        ..quick_grid()
    };
    let one = to_json(&grid(1).run(2).expect("valid grid"));
    let two = to_json(&grid(2).run(2).expect("valid grid"));
    let four = to_json(&grid(4).run(2).expect("valid grid"));
    assert_eq!(one, two, "2 partitions changed the report bytes");
    assert_eq!(one, four, "4 partitions changed the report bytes");
}

/// The sweep determinism guarantee extends to faulted scenarios: a grid
/// with a fault axis is byte-identical across reruns and thread counts.
#[test]
fn fault_axis_is_deterministic_across_thread_counts() {
    let grid = SweepGrid {
        patterns: vec![TrafficPattern::Uniform],
        routings: vec![RoutingAlgorithm::Xy, RoutingAlgorithm::OddEven],
        rates: vec![0.08],
        faults: vec![0, 1, 3],
        ..quick_grid()
    };
    assert_eq!(grid.len(), 6);
    let serial = to_json(&grid.run_serial().expect("valid grid"));
    let rerun = to_json(&grid.run_serial().expect("valid grid"));
    assert_eq!(serial, rerun, "faulted reruns must be byte-identical");
    for threads in [1, 3, 8] {
        let parallel = to_json(&grid.run(threads).expect("valid grid"));
        assert_eq!(
            serial, parallel,
            "faulted grid diverged at {threads} threads"
        );
    }
    // The faulted points actually drop traffic (the axis is live).
    let report = grid.run(2).expect("valid grid");
    assert!(report
        .scenarios
        .iter()
        .filter(|s| s.label.contains("/f"))
        .any(|s| s.metrics.dropped_packets > 0));
    assert!(report
        .scenarios
        .iter()
        .filter(|s| !s.label.contains("/f"))
        .all(|s| s.metrics.dropped_packets == 0));
}

/// The sweep determinism guarantee extends to the topology axis: a grid
/// mixing mesh and torus points (including faulted tori, whose fault draws
/// come from the wrap-aware link pool) is byte-identical across reruns and
/// thread counts.
#[test]
fn topology_axis_is_deterministic_across_thread_counts() {
    let grid = SweepGrid {
        topologies: vec![TopologyKind::Mesh, TopologyKind::Torus],
        patterns: vec![TrafficPattern::Uniform],
        routings: vec![RoutingAlgorithm::Xy, RoutingAlgorithm::OddEven],
        rates: vec![0.08],
        faults: vec![0, 2],
        ..quick_grid()
    };
    assert_eq!(grid.len(), 8, "2 topologies x 2 routings x 2 fault points");
    let serial = to_json(&grid.run_serial().expect("valid grid"));
    let rerun = to_json(&grid.run_serial().expect("valid grid"));
    assert_eq!(serial, rerun, "topology-axis reruns must be byte-identical");
    for threads in [1, 3, 8] {
        let parallel = to_json(&grid.run(threads).expect("valid grid"));
        assert_eq!(
            serial, parallel,
            "topology-axis grid diverged at {threads} threads"
        );
    }
    // The torus points are live and labeled: they ran on the wrap-around
    // fabric (shorter average distance than the mesh at the same size) and
    // carry the /t:torus segment with the mapped routing names.
    let report = grid.run(2).expect("valid grid");
    let torus: Vec<_> = report
        .scenarios
        .iter()
        .filter(|s| s.label.contains("/t:torus"))
        .collect();
    assert_eq!(torus.len(), 4);
    assert!(torus.iter().any(|s| s.label.contains("/torusdor")));
    assert!(torus.iter().any(|s| s.label.contains("/torusmin")));
    assert!(torus
        .iter()
        .all(|s| s.metrics.injected_flits > 0 && s.metrics.cycles > 0));
    let mean_hops = |pred: &dyn Fn(&str) -> bool| {
        let (sum, n) = report
            .scenarios
            .iter()
            .filter(|s| pred(&s.label) && !s.label.contains("/f"))
            .fold((0.0, 0), |(a, n), s| (a + s.metrics.avg_hops, n + 1));
        sum / n as f64
    };
    let mesh = mean_hops(&|l: &str| !l.contains("/t:torus"));
    let torus_hops = mean_hops(&|l: &str| l.contains("/t:torus"));
    assert!(
        torus_hops < mesh,
        "wrap links must shorten paths: torus {torus_hops} vs mesh {mesh}"
    );
    // Faulted torus points keep the liveness contract: the fabric was
    // actually degraded, and everything injected was delivered or counted
    // dropped within the drain budget — nothing wedged.
    for s in report.scenarios.iter().filter(|s| s.label.contains("/f2")) {
        assert!(
            s.metrics.avg_dead_links > 0.0,
            "{}: the fault axis must be live",
            s.label
        );
        assert_eq!(
            s.unfinished_packets, 0,
            "{}: faulted scenarios must drain, not wedge",
            s.label
        );
    }
}

/// An all-NaN aggregate (a grid whose every scenario produced zero latency
/// samples) must survive the JSON round-trip: the NaN-able aggregate fields
/// are routed through `serde_nan`, rendering `null` instead of leaking a
/// bare `NaN` token into the report.
#[test]
fn nan_aggregate_roundtrips_through_json() {
    // Rate 0: nothing is ever offered, so every latency figure is NaN and
    // no scenario wins a latency-based superlative.
    let grid = SweepGrid {
        patterns: vec![TrafficPattern::Uniform],
        rates: vec![0.0],
        routings: vec![RoutingAlgorithm::Xy],
        warmup: 50,
        measure: 100,
        drain: 50,
        ..quick_grid()
    };
    let report = grid.run(2).expect("valid grid");
    let agg = &report.aggregate;
    assert!(agg.avg_packet_latency.is_nan());
    assert!(agg.min_latency.is_nan());
    assert!(agg.max_latency.is_nan());
    assert!(agg.best_edp.is_nan());
    assert!(agg.best_edp_scenario.is_empty());
    let json = to_json(&report);
    assert!(
        !json.contains("NaN") && !json.contains("nan"),
        "serialized report must not contain a bare NaN token"
    );
    let back: SweepReport = serde_json::from_str(&json).expect("NaN report deserializes");
    assert!(back.aggregate.best_edp.is_nan());
    assert!(back.aggregate.avg_packet_latency.is_nan());
    assert_eq!(to_json(&back), json, "round-trip must be lossless");
}

/// Golden back-compat pin of the workload refactor: a *legacy* JSON config
/// (the pre-workload `Stationary {pattern, rate}` form) and the equivalent
/// single-phase Bernoulli `WorkloadSpec` must produce byte-identical
/// `SweepReport`s. This is the test that pins the traffic refactor as
/// behavior-preserving: legacy configs deserialize into workloads that
/// consume the RNG draw-for-draw like the old generator.
#[test]
fn legacy_stationary_config_is_byte_identical_to_workload_equivalent() {
    // The exact serialized form the pre-workload tree emitted (`throttles`
    // and `fault_plan` carry serde defaults and may be absent).
    let legacy_json = r#"{
        "width": 8, "height": 8, "kind": "Mesh",
        "num_vcs": 4, "vc_depth": 4, "packet_len": 5,
        "routing": "Xy",
        "traffic": {"Stationary": {"pattern": "Uniform", "rate": 0.1}},
        "vf_table": {"levels": [
            {"voltage": 0.6, "freq_scale": 0.4},
            {"voltage": 0.8, "freq_scale": 0.6},
            {"voltage": 1.0, "freq_scale": 0.8},
            {"voltage": 1.1, "freq_scale": 1.0}]},
        "regions_x": 2, "regions_y": 2,
        "power": {
            "e_buffer_write": 1.2, "e_buffer_read": 1.0, "e_route": 0.1,
            "e_vc_alloc": 0.15, "e_sw_arb": 0.2, "e_xbar": 0.8,
            "e_link": 1.6, "p_leak_router": 0.35, "p_leak_link": 0.05,
            "idle_leakage_fraction": 1.0},
        "seed": 1
    }"#;
    let legacy: SimConfig = serde_json::from_str(legacy_json).expect("legacy config loads");
    let modern =
        SimConfig::default().with_workload(WorkloadSpec::bernoulli(TrafficPattern::Uniform, 0.1));
    assert_eq!(legacy, modern, "legacy form must deserialize into the spec");

    let grid = |base: SimConfig| SweepGrid {
        base,
        sizes: vec![(4, 4)],
        topologies: vec![TopologyKind::Mesh],
        patterns: vec![TrafficPattern::Uniform],
        rates: vec![0.08],
        routings: vec![RoutingAlgorithm::Xy],
        warmup: 200,
        measure: 500,
        drain: 500,
        base_seed: 42,
        ..quick_grid()
    };
    let from_legacy = to_json(&grid(legacy).run(2).expect("valid grid"));
    let from_modern = to_json(&grid(modern).run_serial().expect("valid grid"));
    assert_eq!(
        from_legacy, from_modern,
        "legacy and workload-form configs must sweep to identical bytes"
    );
}

/// The sweep determinism guarantee extends to the workloads axis: grids
/// carrying bursty and phase-changing workload points are byte-identical
/// across reruns and thread counts.
#[test]
fn workload_axis_is_deterministic_across_thread_counts() {
    let grid = SweepGrid {
        patterns: vec![TrafficPattern::Uniform],
        rates: vec![0.08],
        routings: vec![RoutingAlgorithm::Xy],
        workloads: vec![
            WorkloadSpec::stationary(
                TrafficPattern::Uniform,
                InjectionProcess::Bursty {
                    rate_on: 0.3,
                    switch: 0.05,
                },
            ),
            WorkloadSpec::new(vec![
                noc_sim::WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.02, 400),
                noc_sim::WorkloadPhase::new(
                    TrafficPattern::Tornado,
                    InjectionProcess::Periodic {
                        rate: 0.3,
                        period: 100,
                        on: 40,
                    },
                    400,
                ),
            ]),
        ],
        ..quick_grid()
    };
    assert_eq!(grid.len(), 3);
    let serial = to_json(&grid.run_serial().expect("valid grid"));
    let rerun = to_json(&grid.run_serial().expect("valid grid"));
    assert_eq!(serial, rerun, "workload reruns must be byte-identical");
    for threads in [1, 3, 8] {
        let parallel = to_json(&grid.run(threads).expect("valid grid"));
        assert_eq!(
            serial, parallel,
            "workload grid diverged at {threads} threads"
        );
    }
    // The workload points are live: the bursty scenario injects real load
    // and its label parses back to its spec.
    let report = grid.run(2).expect("valid grid");
    let bursty = &report.scenarios[1];
    assert!(bursty.label.contains("ph[uniform:burst0.3x0.05]"));
    assert!(bursty.metrics.injected_flits > 0);
    assert!(
        bursty.metrics.injection_burstiness > report.scenarios[0].metrics.injection_burstiness,
        "the bursty point must read burstier than the Bernoulli point"
    );
}

#[test]
fn different_base_seed_changes_results() {
    let grid = quick_grid();
    let other = SweepGrid {
        base_seed: 8,
        ..quick_grid()
    };
    let a = grid.run(2).expect("valid grid");
    let b = other.run(2).expect("valid grid");
    assert_ne!(
        to_json(&a),
        to_json(&b),
        "the base seed must actually reach the per-scenario simulators"
    );
}

#[test]
fn report_shape_and_aggregate_are_consistent() {
    let report = quick_grid().run(4).expect("valid grid");
    assert_eq!(report.scenarios.len(), 8);
    assert_eq!(report.aggregate.num_scenarios, 8);
    // Grid order: indices are 0..n in order.
    for (i, r) in report.scenarios.iter().enumerate() {
        assert_eq!(r.index, i);
        assert!(
            r.metrics.cycles > 0,
            "{}: empty measurement window",
            r.label
        );
    }
    // At these light loads nothing saturates and latency is meaningful.
    assert_eq!(report.aggregate.saturated_scenarios, 0);
    assert!(report.aggregate.avg_packet_latency.is_finite());
    assert!(report.aggregate.min_latency <= report.aggregate.max_latency);
    assert!(!report.aggregate.peak_throughput_scenario.is_empty());
    assert!(report.aggregate.total_energy_pj > 0.0);
    // The aggregate's extremes point at real scenarios.
    assert!(report
        .scenarios
        .iter()
        .any(|r| r.label == report.aggregate.min_latency_scenario));
    assert!(report
        .scenarios
        .iter()
        .any(|r| r.label == report.aggregate.best_edp_scenario));
}

#[test]
fn report_roundtrips_through_json() {
    let report = quick_grid().run(2).expect("valid grid");
    let json = to_json(&report);
    let back: SweepReport = serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(to_json(&back), json, "JSON round-trip must be lossless");
}

/// Golden pin of the cycle-accurate simulation results, captured from the
/// tree *before* the cycle-loop optimizations (scratch buffers in
/// `Network::step`, O(1) occupancy/backlog counters, cached per-region DVFS
/// scales). The optimizations must be pure refactors: any drift in these
/// numbers means simulated behavior changed, not just speed.
///
/// To refresh after an *intentional* behavior change:
/// `cargo run --release -p cli -- sweep-grid --sizes 4x4 \
///    --patterns uniform,transpose --rates 0.08 --routings xy \
///    --warmup 200 --measure 600 --drain 600 --seed 42 --serial --out g.json`
/// and copy the per-scenario fields below from `g.json`.
#[test]
fn optimized_cycle_loop_reproduces_golden_metrics() {
    let grid = SweepGrid {
        base: SimConfig::default(),
        sizes: vec![(4, 4)],
        topologies: vec![TopologyKind::Mesh],
        patterns: vec![TrafficPattern::Uniform, TrafficPattern::Transpose],
        rates: vec![0.08],
        routings: vec![RoutingAlgorithm::Xy],
        levels: vec![None],
        faults: vec![0],
        workloads: vec![],
        partitions: 1,
        warmup: 200,
        measure: 600,
        drain: 600,
        base_seed: 42,
    };
    let report = grid.run_serial().expect("valid grid");
    assert_eq!(report.scenarios.len(), 2);

    let uni = &report.scenarios[0];
    assert_eq!(uni.label, "4x4/uniform/r0.08/xy");
    assert_eq!(uni.seed, 12058926934050108962);
    assert!(!uni.saturated);
    assert_eq!(uni.metrics.avg_packet_latency, 15.6625);
    assert_eq!(uni.metrics.throughput, 0.08177083333333333);
    assert_eq!(uni.metrics.energy_pj, 22826.25000000159);
    assert_eq!(uni.metrics.injected_flits, 1012);
    assert_eq!(uni.metrics.ejected_flits, 1025);

    let tra = &report.scenarios[1];
    assert_eq!(tra.label, "4x4/transpose/r0.08/xy");
    assert_eq!(tra.seed, 13679457532755275413);
    assert!(!tra.saturated);
    assert_eq!(tra.metrics.avg_packet_latency, 18.52173913043478);
    assert_eq!(tra.metrics.throughput, 0.060833333333333336);
    assert_eq!(tra.metrics.energy_pj, 23796.550000001527);
    assert_eq!(tra.metrics.injected_flits, 805);
    assert_eq!(tra.metrics.ejected_flits, 820);

    // The same grid run in parallel must serialize to the same bytes (the
    // scratch buffers live per-Network, so thread reuse cannot alias them).
    let parallel = grid.run(4).expect("valid grid");
    assert_eq!(to_json(&parallel), to_json(&report));
}

/// Golden pin of degraded-mode behavior: a 4×4 mesh at uniform 0.10 with one
/// permanent link fault (5 -> 6), under deterministic XY and adaptive
/// odd-even routing. Future routing or fault-handling changes cannot
/// silently shift faulted-fabric metrics past this test: any drift in drops,
/// deliveries, latency, or energy is a behavior change that must be made
/// deliberately.
///
/// To refresh after an *intentional* change, rerun this grid (serial) and
/// copy the per-scenario fields from the report; the values were captured
/// when the fault subsystem landed.
#[test]
fn faulted_golden_metrics_are_pinned() {
    use noc_sim::{FaultEvent, FaultPlan, FaultTarget, NodeId, Port};
    let plan = FaultPlan::new(vec![FaultEvent {
        start: 0,
        duration: None,
        target: FaultTarget::Link {
            node: NodeId(5),
            port: Port::East,
        },
    }])
    .expect("valid fault plan");
    let grid = SweepGrid {
        base: SimConfig::default().with_faults(plan),
        sizes: vec![(4, 4)],
        topologies: vec![TopologyKind::Mesh],
        patterns: vec![TrafficPattern::Uniform],
        rates: vec![0.10],
        routings: vec![RoutingAlgorithm::Xy, RoutingAlgorithm::OddEven],
        levels: vec![None],
        faults: vec![0],
        workloads: vec![],
        partitions: 1,
        warmup: 200,
        measure: 600,
        drain: 600,
        base_seed: 42,
    };
    let report = grid.run_serial().expect("valid grid");
    assert_eq!(report.scenarios.len(), 2);

    // Deterministic XY cannot route around the dead link: packets whose
    // minimal path needs it are dropped.
    let xy = &report.scenarios[0];
    assert_eq!(xy.label, "4x4/uniform/r0.1/xy");
    assert_eq!(xy.seed, 12058926934050108962);
    assert!(!xy.saturated);
    assert_eq!(xy.metrics.avg_packet_latency, 16.123456790123456);
    assert_eq!(xy.metrics.throughput, 0.08427083333333334);
    assert_eq!(xy.metrics.energy_pj, 37925.60000000088);
    assert_eq!(xy.metrics.injected_flits, 1981);
    assert_eq!(xy.metrics.ejected_flits, 1668);
    assert_eq!(xy.metrics.dropped_flits, 305);
    assert_eq!(xy.metrics.dropped_packets, 61);
    assert_eq!(xy.metrics.avg_dead_links, 2.0);

    // Adaptive odd-even reroutes around the fault; a small residue of
    // packets still hits positions with no legal alternative turn.
    let oe = &report.scenarios[1];
    assert_eq!(oe.label, "4x4/uniform/r0.1/oddeven");
    assert_eq!(oe.seed, 13679457532755275413);
    assert!(!oe.saturated);
    assert_eq!(oe.metrics.avg_packet_latency, 16.46961325966851);
    assert_eq!(oe.metrics.throughput, 0.09447916666666667);
    assert_eq!(oe.metrics.energy_pj, 21783.900000001508);
    assert_eq!(oe.metrics.injected_flits, 1058);
    assert_eq!(oe.metrics.ejected_flits, 1002);
    assert_eq!(oe.metrics.dropped_flits, 75);
    assert_eq!(oe.metrics.dropped_packets, 15);
    assert_eq!(oe.metrics.avg_dead_links, 2.0);
    assert!(
        oe.metrics.dropped_packets < xy.metrics.dropped_packets,
        "adaptive routing must save traffic a deterministic algorithm loses"
    );

    // Faulted grids keep the engine's determinism guarantee: parallel
    // execution serializes to the same bytes as the serial run.
    let parallel = grid.run(4).expect("valid grid");
    assert_eq!(to_json(&parallel), to_json(&report));
}

#[test]
fn dvfs_level_axis_is_applied() {
    let grid = SweepGrid {
        levels: vec![Some(0), Some(3)],
        rates: vec![0.05],
        patterns: vec![TrafficPattern::Uniform],
        routings: vec![RoutingAlgorithm::Xy],
        sizes: vec![(4, 4)],
        ..quick_grid()
    };
    let report = grid.run(2).expect("valid grid");
    assert_eq!(report.scenarios.len(), 2);
    let low = &report.scenarios[0];
    let high = &report.scenarios[1];
    assert!(low.label.ends_with("/L0"), "label {}", low.label);
    assert!(high.label.ends_with("/L3"), "label {}", high.label);
    // The lowest V/F level must be slower and cheaper per flit than the
    // highest (the monotonicity the DVFS model guarantees).
    assert!(
        low.metrics.avg_packet_latency > high.metrics.avg_packet_latency,
        "L0 latency {} must exceed L3 latency {}",
        low.metrics.avg_packet_latency,
        high.metrics.avg_packet_latency
    );
    let per_flit =
        |r: &noc_selfconf::ScenarioResult| r.metrics.energy_pj / r.metrics.ejected_flits as f64;
    assert!(
        per_flit(low) < per_flit(high),
        "L0 energy/flit must undercut L3"
    );
}
