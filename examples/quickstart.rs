//! Quickstart: simulate a mesh, inspect latency/energy, and hand control to
//! a DVFS heuristic — the 60-second tour of the public API.
//!
//! Run with: `cargo run --release --example quickstart`

use noc_selfconf::{run_controller, StaticController, ThresholdController};
use noc_sim::{SimConfig, SimError, Simulator, TrafficPattern};

fn main() -> Result<(), SimError> {
    // 1. A classic open-loop simulation: 8×8 mesh, uniform traffic.
    let config = SimConfig::default().with_traffic(TrafficPattern::Uniform, 0.10);
    let mut sim = Simulator::new(config.clone())?;
    let run = sim.run_classic(2000, 6000, 6000);
    println!("— open-loop simulation (all routers at nominal V/F) —");
    println!(
        "  avg packet latency : {:8.1} cycles",
        run.window.avg_packet_latency
    );
    println!(
        "  throughput         : {:8.3} flits/node/cycle",
        run.window.throughput
    );
    println!(
        "  energy             : {:8.1} nJ",
        run.window.energy_pj / 1e3
    );
    println!("  saturated          : {}", run.saturated);

    // 2. The same workload under runtime controllers.
    println!("\n— closed-loop control (40 epochs × 500 cycles) —");
    for mut controller in [
        Box::new(StaticController::max()) as Box<dyn noc_selfconf::Controller>,
        Box::new(StaticController::min()),
        Box::new(ThresholdController::new(
            Simulator::new(config.clone())?.network().region_capacity(),
            config.width * config.height,
        )),
    ] {
        let out = run_controller(&config, controller.as_mut(), 40, 500)?;
        println!(
            "  {:<12} latency {:7.1}  energy {:8.1} nJ  EDP {:10.2}e6  mean level {:.2}",
            out.aggregate.controller,
            out.aggregate.avg_latency,
            out.aggregate.energy_pj / 1e3,
            out.aggregate.edp / 1e6,
            out.aggregate.mean_level,
        );
    }
    println!("\nNext: `cargo run --release --example energy_aware_dvfs` for the RL agent.");
    Ok(())
}
