//! Topology descriptions: node coordinates, ports, and neighbor wiring for
//! 2-D meshes and tori.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a network node (router + attached core), row-major in the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

/// (x, y) grid coordinate. `x` grows east, `y` grows south.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Column, growing east.
    pub x: usize,
    /// Row, growing south.
    pub y: usize,
}

impl Coord {
    /// Manhattan distance between two coordinates (mesh hop count under
    /// minimal routing).
    pub fn manhattan(&self, other: &Coord) -> usize {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A router port. The four cardinal ports connect to neighboring routers;
/// `Local` connects to the attached processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Port {
    /// Toward decreasing `y`.
    North,
    /// Toward increasing `x`.
    East,
    /// Toward increasing `y`.
    South,
    /// Toward decreasing `x`.
    West,
    /// The attached processing element.
    Local,
}

impl Port {
    /// All ports in fixed index order.
    pub const ALL: [Port; 5] = [
        Port::North,
        Port::East,
        Port::South,
        Port::West,
        Port::Local,
    ];

    /// Number of ports on a router.
    pub const COUNT: usize = 5;

    /// Stable index of this port in `[0, COUNT)`.
    pub fn index(self) -> usize {
        match self {
            Port::North => 0,
            Port::East => 1,
            Port::South => 2,
            Port::West => 3,
            Port::Local => 4,
        }
    }

    /// Port from a stable index.
    ///
    /// # Panics
    /// Panics if `idx >= Port::COUNT`.
    pub fn from_index(idx: usize) -> Port {
        Port::ALL[idx]
    }

    /// The port on the neighboring router that faces back at this one:
    /// a flit leaving through `East` arrives on the neighbor's `West` port.
    pub fn opposite(self) -> Port {
        match self {
            Port::North => Port::South,
            Port::East => Port::West,
            Port::South => Port::North,
            Port::West => Port::East,
            Port::Local => Port::Local,
        }
    }
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Port::North => "N",
            Port::East => "E",
            Port::South => "S",
            Port::West => "W",
            Port::Local => "L",
        };
        f.write_str(s)
    }
}

/// The kind of grid topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// 2-D mesh: edge routers have fewer neighbors.
    Mesh,
    /// 2-D torus: wrap-around links on every row and column.
    Torus,
}

impl TopologyKind {
    /// Every kind paired with its canonical short name — the single table
    /// behind [`TopologyKind::name`] and [`TopologyKind::from_name`]. The
    /// names are the `--topologies` CLI vocabulary and the `/t:<name>` sweep
    /// label segment.
    pub const NAMED: [(&'static str, TopologyKind); 2] =
        [("mesh", TopologyKind::Mesh), ("torus", TopologyKind::Torus)];

    /// The kind's canonical short name.
    pub fn name(self) -> &'static str {
        Self::NAMED
            .iter()
            .find(|(_, k)| *k == self)
            .map(|(n, _)| *n)
            .expect("every kind is in NAMED")
    }

    /// Look up a kind by its canonical short name.
    pub fn from_name(name: &str) -> Option<TopologyKind> {
        Self::NAMED
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, k)| *k)
    }
}

/// A rectangular grid topology (mesh or torus).
///
/// ```
/// use noc_sim::{Topology, NodeId, Port};
///
/// let mesh = Topology::mesh(4, 4);
/// assert_eq!(mesh.num_nodes(), 16);
/// assert_eq!(mesh.neighbor(NodeId(0), Port::East), Some(NodeId(1)));
/// assert_eq!(mesh.distance(NodeId(0), NodeId(15)), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    kind: TopologyKind,
    width: usize,
    height: usize,
}

impl Topology {
    /// Create a topology of the given kind (dispatches to
    /// [`Topology::mesh`] / [`Topology::torus`]).
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(kind: TopologyKind, width: usize, height: usize) -> Self {
        match kind {
            TopologyKind::Mesh => Topology::mesh(width, height),
            TopologyKind::Torus => Topology::torus(width, height),
        }
    }

    /// Create a mesh of `width × height` routers.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn mesh(width: usize, height: usize) -> Self {
        assert!(
            width > 0 && height > 0,
            "topology dimensions must be positive"
        );
        Topology {
            kind: TopologyKind::Mesh,
            width,
            height,
        }
    }

    /// Create a torus of `width × height` routers.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn torus(width: usize, height: usize) -> Self {
        assert!(
            width > 0 && height > 0,
            "topology dimensions must be positive"
        );
        Topology {
            kind: TopologyKind::Torus,
            width,
            height,
        }
    }

    /// Which kind of topology this is.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Grid width (number of columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height (number of rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.width * self.height
    }

    /// Coordinate of a node id (row-major).
    ///
    /// # Panics
    /// Panics if the node is out of range.
    pub fn coord(&self, node: NodeId) -> Coord {
        assert!(node.0 < self.num_nodes(), "node {node} out of range");
        Coord {
            x: node.0 % self.width,
            y: node.0 / self.width,
        }
    }

    /// Node id at a coordinate (row-major).
    ///
    /// # Panics
    /// Panics if the coordinate is out of range.
    pub fn node_at(&self, c: Coord) -> NodeId {
        assert!(
            c.x < self.width && c.y < self.height,
            "coordinate {c} out of range"
        );
        NodeId(c.y * self.width + c.x)
    }

    /// The neighbor reached by leaving `node` through `port`, if the link
    /// exists. `Local` never leads to a neighbor. On a mesh, edge ports have
    /// no neighbor; on a torus, every cardinal port wraps around.
    pub fn neighbor(&self, node: NodeId, port: Port) -> Option<NodeId> {
        let c = self.coord(node);
        let (w, h) = (self.width, self.height);
        let wrapped = |x: usize, y: usize| Some(self.node_at(Coord { x, y }));
        match (self.kind, port) {
            (_, Port::Local) => None,
            (TopologyKind::Mesh, Port::North) => {
                (c.y > 0).then(|| self.node_at(Coord { x: c.x, y: c.y - 1 }))
            }
            (TopologyKind::Mesh, Port::South) => {
                (c.y + 1 < h).then(|| self.node_at(Coord { x: c.x, y: c.y + 1 }))
            }
            (TopologyKind::Mesh, Port::East) => {
                (c.x + 1 < w).then(|| self.node_at(Coord { x: c.x + 1, y: c.y }))
            }
            (TopologyKind::Mesh, Port::West) => {
                (c.x > 0).then(|| self.node_at(Coord { x: c.x - 1, y: c.y }))
            }
            (TopologyKind::Torus, Port::North) => wrapped(c.x, (c.y + h - 1) % h),
            (TopologyKind::Torus, Port::South) => wrapped(c.x, (c.y + 1) % h),
            (TopologyKind::Torus, Port::East) => wrapped((c.x + 1) % w, c.y),
            (TopologyKind::Torus, Port::West) => wrapped((c.x + w - 1) % w, c.y),
        }
    }

    /// Minimal hop distance between two nodes under this topology.
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        let (ca, cb) = (self.coord(a), self.coord(b));
        match self.kind {
            TopologyKind::Mesh => ca.manhattan(&cb),
            TopologyKind::Torus => {
                let dx = ca.x.abs_diff(cb.x);
                let dy = ca.y.abs_diff(cb.y);
                dx.min(self.width - dx) + dy.min(self.height - dy)
            }
        }
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes()).map(NodeId)
    }

    /// Number of unidirectional router-to-router links in the topology.
    pub fn num_links(&self) -> usize {
        self.nodes()
            .map(|n| {
                Port::ALL
                    .iter()
                    .filter(|&&p| p != Port::Local && self.neighbor(n, p).is_some())
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_coords_roundtrip() {
        let t = Topology::mesh(4, 3);
        for n in t.nodes() {
            assert_eq!(t.node_at(t.coord(n)), n);
        }
        assert_eq!(t.num_nodes(), 12);
    }

    #[test]
    fn mesh_corner_has_two_neighbors() {
        let t = Topology::mesh(4, 4);
        let corner = t.node_at(Coord { x: 0, y: 0 });
        assert_eq!(t.neighbor(corner, Port::North), None);
        assert_eq!(t.neighbor(corner, Port::West), None);
        assert_eq!(t.neighbor(corner, Port::East), Some(NodeId(1)));
        assert_eq!(t.neighbor(corner, Port::South), Some(NodeId(4)));
    }

    #[test]
    fn torus_wraps_around() {
        let t = Topology::torus(4, 4);
        let corner = t.node_at(Coord { x: 0, y: 0 });
        assert_eq!(
            t.neighbor(corner, Port::North),
            Some(t.node_at(Coord { x: 0, y: 3 }))
        );
        assert_eq!(
            t.neighbor(corner, Port::West),
            Some(t.node_at(Coord { x: 3, y: 0 }))
        );
    }

    #[test]
    fn neighbor_links_are_symmetric() {
        for t in [Topology::mesh(5, 3), Topology::torus(4, 4)] {
            for n in t.nodes() {
                for p in Port::ALL {
                    if let Some(m) = t.neighbor(n, p) {
                        assert_eq!(t.neighbor(m, p.opposite()), Some(n), "{n} -{p}-> {m}");
                    }
                }
            }
        }
    }

    #[test]
    fn mesh_distance_is_manhattan() {
        let t = Topology::mesh(8, 8);
        assert_eq!(t.distance(NodeId(0), NodeId(63)), 14);
        assert_eq!(t.distance(NodeId(0), NodeId(0)), 0);
    }

    #[test]
    fn torus_distance_uses_wraparound() {
        let t = Topology::torus(8, 8);
        // (0,0) -> (7,7): 1 hop west + 1 hop north via wraparound.
        assert_eq!(t.distance(NodeId(0), NodeId(63)), 2);
    }

    #[test]
    fn mesh_link_count() {
        // 2-D mesh: 2 * (w*(h-1) + h*(w-1)) unidirectional links.
        let t = Topology::mesh(4, 4);
        assert_eq!(t.num_links(), 2 * (4 * 3 + 4 * 3));
        let t = Topology::torus(4, 4);
        assert_eq!(t.num_links(), 4 * 16);
    }

    #[test]
    fn port_opposites_are_involutive() {
        for p in Port::ALL {
            assert_eq!(p.opposite().opposite(), p);
        }
    }

    #[test]
    fn port_index_roundtrip() {
        for p in Port::ALL {
            assert_eq!(Port::from_index(p.index()), p);
        }
    }

    #[test]
    fn topology_kind_names_roundtrip() {
        for (name, kind) in TopologyKind::NAMED {
            assert_eq!(kind.name(), name);
            assert_eq!(TopologyKind::from_name(name), Some(kind));
        }
        assert_eq!(TopologyKind::from_name("ring"), None);
        assert_eq!(
            Topology::new(TopologyKind::Torus, 4, 4),
            Topology::torus(4, 4)
        );
        assert_eq!(
            Topology::new(TopologyKind::Mesh, 5, 3),
            Topology::mesh(5, 3)
        );
    }
}
