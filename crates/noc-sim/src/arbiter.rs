//! Arbiters used in the router's allocation stages.

use serde::{Deserialize, Serialize};

/// A round-robin arbiter over `n` requesters.
///
/// Grants rotate: after requester `i` wins, requester `i + 1` has the highest
/// priority next time, guaranteeing starvation freedom under persistent
/// requests.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRobinArbiter {
    n: usize,
    /// Index with the highest priority on the next arbitration.
    next: usize,
}

impl RoundRobinArbiter {
    /// Create an arbiter over `n` requesters.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one requester");
        RoundRobinArbiter { n, next: 0 }
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the arbiter has zero requesters (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Grant one of the asserted requests, if any, and advance the priority
    /// pointer past the winner.
    ///
    /// # Panics
    /// Panics if `requests.len() != self.len()`.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector length mismatch");
        for off in 0..self.n {
            let i = (self.next + off) % self.n;
            if requests[i] {
                self.next = (i + 1) % self.n;
                return Some(i);
            }
        }
        None
    }

    /// Peek at who would win without updating the priority pointer.
    pub fn peek(&self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector length mismatch");
        (0..self.n)
            .map(|off| (self.next + off) % self.n)
            .find(|&i| requests[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_only_asserted_requests() {
        let mut a = RoundRobinArbiter::new(4);
        assert_eq!(a.grant(&[false, false, true, false]), Some(2));
        assert_eq!(a.grant(&[false, false, false, false]), None);
    }

    #[test]
    fn rotates_priority_after_grant() {
        let mut a = RoundRobinArbiter::new(3);
        let all = [true, true, true];
        assert_eq!(a.grant(&all), Some(0));
        assert_eq!(a.grant(&all), Some(1));
        assert_eq!(a.grant(&all), Some(2));
        assert_eq!(a.grant(&all), Some(0));
    }

    #[test]
    fn no_starvation_under_persistent_contention() {
        let mut a = RoundRobinArbiter::new(5);
        let mut wins = [0usize; 5];
        for _ in 0..100 {
            let w = a.grant(&[true; 5]).unwrap();
            wins[w] += 1;
        }
        assert!(wins.iter().all(|&w| w == 20), "unfair wins: {wins:?}");
    }

    #[test]
    fn peek_does_not_advance() {
        let mut a = RoundRobinArbiter::new(2);
        assert_eq!(a.peek(&[true, true]), Some(0));
        assert_eq!(a.peek(&[true, true]), Some(0));
        assert_eq!(a.grant(&[true, true]), Some(0));
        assert_eq!(a.peek(&[true, true]), Some(1));
    }

    #[test]
    #[should_panic(expected = "at least one requester")]
    fn zero_requesters_panics() {
        let _ = RoundRobinArbiter::new(0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_request_length_panics() {
        let mut a = RoundRobinArbiter::new(3);
        let _ = a.grant(&[true]);
    }
}
