//! Phase adaptation: watch controllers track a bursty, phase-changing
//! workload epoch by epoch — the scenario that motivates *runtime*
//! self-configuration over static design-time tuning.
//!
//! Run with: `cargo run --release --example phase_adaptation`

use noc_selfconf::{run_controller, StaticController, ThresholdController};
use noc_sim::{
    InjectionProcess, SimConfig, SimError, Simulator, TrafficPattern, TrafficSpec, WorkloadPhase,
    WorkloadSpec,
};

fn main() -> Result<(), SimError> {
    // Idle → burst → bursty transpose phase → near-idle, repeating.
    let trace = TrafficSpec::Workload(WorkloadSpec::new(vec![
        WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.02, 3000),
        WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.25, 3000),
        WorkloadPhase::new(
            TrafficPattern::Transpose,
            InjectionProcess::Bursty {
                rate_on: 0.24,
                switch: 0.02,
            },
            3000,
        ),
        WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.01, 3000),
    ]));
    let config = SimConfig::default().with_traffic_spec(trace);
    let caps = Simulator::new(config.clone())?.network().region_capacity();
    let nodes = config.width * config.height;

    for mut controller in [
        Box::new(StaticController::max()) as Box<dyn noc_selfconf::Controller>,
        Box::new(ThresholdController::new(caps, nodes)),
    ] {
        let run = run_controller(&config, controller.as_mut(), 48, 500)?;
        println!("\n=== {} ===", run.aggregate.controller);
        println!("epoch | inj rate | mean level | latency | power (pJ/cyc)");
        for (i, (m, levels)) in run.epochs.iter().zip(&run.levels).enumerate() {
            if i % 2 != 0 {
                continue; // print every other epoch
            }
            let mean_level = levels.iter().map(|&l| l as f64).sum::<f64>() / levels.len() as f64;
            let bar_len = (mean_level * 4.0).round() as usize;
            println!(
                "{:5} | {:8.3} | {:10.2} {}| {:7.1} | {:8.1}",
                i,
                m.injection_rate,
                mean_level,
                "#".repeat(bar_len),
                m.avg_packet_latency,
                m.energy_pj / m.cycles.max(1) as f64,
            );
        }
        println!(
            "aggregate: latency {:.1}, energy {:.1} nJ, EDP {:.2}e6",
            run.aggregate.avg_latency,
            run.aggregate.energy_pj / 1e3,
            run.aggregate.edp / 1e6
        );
    }
    println!(
        "\nThe threshold controller tracks the bursts; a trained DRL policy \
         (see `energy_aware_dvfs`) anticipates them with lower EDP."
    );
    Ok(())
}
