//! The reward function: the latency/energy/throughput trade-off the agent
//! optimizes.
//!
//! `r = w_t·throughput − w_l·latencỹ − w_e·energỹ − penalty·[latency > limit]`
//!
//! where `latencỹ` and `energỹ` are normalized to be O(1) at typical
//! operating points, so the weights express the paper's intent directly:
//! keep latency near the performance target while cutting energy.

use noc_sim::WindowMetrics;
use serde::{Deserialize, Serialize};

/// Reward weights and normalizers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Weight on normalized latency (cost).
    pub latency_weight: f64,
    /// Weight on normalized energy (cost).
    pub energy_weight: f64,
    /// Weight on accepted throughput (benefit).
    pub throughput_weight: f64,
    /// Latency (cycles) that maps to a normalized latency of 1.
    pub latency_scale: f64,
    /// Energy per node per cycle (pJ) that maps to a normalized energy of 1.
    pub energy_scale: f64,
    /// Hard latency constraint: exceeding it costs `violation_penalty`.
    pub latency_limit: Option<f64>,
    /// Extra cost when the latency limit is violated.
    pub violation_penalty: f64,
    /// Weight on normalized source backlog. Backlog measures *depth* of
    /// saturation, giving the agent a recovery gradient when the latency
    /// signal is already pinned at its cap.
    pub backlog_weight: f64,
    /// Backlog (flits per node) that maps to a normalized backlog of 1
    /// (capped at 3).
    pub backlog_scale: f64,
}

impl Default for RewardConfig {
    /// Constraint-oriented defaults for the 8×8 configuration, calibrated
    /// against the simulator's measured operating points (idle ≈ 1.4, mid
    /// ≈ 4, burst ≈ 8 pJ/node/cycle at nominal V/F): energy dominates while
    /// the latency constraint (80 cycles ≈ 3× zero-load) is met, and a harsh
    /// violation penalty makes saturation strictly worse than running fast.
    fn default() -> Self {
        RewardConfig {
            latency_weight: 0.5,
            energy_weight: 1.0,
            throughput_weight: 0.25,
            latency_scale: 60.0,
            energy_scale: 4.0,
            latency_limit: Some(80.0),
            violation_penalty: 4.0,
            backlog_weight: 0.5,
            backlog_scale: 10.0,
        }
    }
}

impl RewardConfig {
    /// Energy-biased variant (for ablations): doubles the energy weight,
    /// halves the latency weight, and relaxes the latency constraint.
    pub fn energy_biased() -> Self {
        RewardConfig {
            energy_weight: 2.0,
            latency_weight: 0.25,
            latency_limit: Some(160.0),
            violation_penalty: 2.0,
            ..RewardConfig::default()
        }
    }

    /// Latency-biased variant (for ablations): latency dominates and the
    /// constraint tightens.
    pub fn latency_biased() -> Self {
        RewardConfig {
            energy_weight: 0.3,
            latency_weight: 2.0,
            latency_limit: Some(50.0),
            violation_penalty: 6.0,
            ..RewardConfig::default()
        }
    }

    /// Normalized latency for an epoch: `avg_latency / latency_scale`,
    /// capped at 4. When no packet completed, a stalled network (buffers
    /// occupied) reads as the cap — the worst signal the agent can receive —
    /// while an idle network reads as 0.
    pub fn normalized_latency(&self, m: &WindowMetrics) -> f64 {
        if m.latency_samples > 0 {
            (m.avg_packet_latency / self.latency_scale).min(4.0)
        } else if m.avg_occupancy > 0.5 {
            4.0
        } else {
            0.0
        }
    }

    /// Normalized energy: pJ per node per cycle over `energy_scale`.
    pub fn normalized_energy(&self, m: &WindowMetrics, num_nodes: usize) -> f64 {
        let per_node_cycle = m.energy_pj / (m.cycles.max(1) as f64 * num_nodes.max(1) as f64);
        per_node_cycle / self.energy_scale
    }

    /// Normalized source backlog: flits/node over `backlog_scale`, capped
    /// at 3.
    pub fn normalized_backlog(&self, m: &WindowMetrics, num_nodes: usize) -> f64 {
        (m.avg_backlog / (num_nodes.max(1) as f64 * self.backlog_scale)).min(3.0)
    }

    /// Compute the epoch reward.
    pub fn compute(&self, m: &WindowMetrics, num_nodes: usize) -> f64 {
        let lat = self.normalized_latency(m);
        let energy = self.normalized_energy(m, num_nodes);
        let mut r = self.throughput_weight * m.throughput
            - self.latency_weight * lat
            - self.energy_weight * energy
            - self.backlog_weight * self.normalized_backlog(m, num_nodes);
        if let Some(limit) = self.latency_limit {
            let violated = if m.latency_samples > 0 {
                m.avg_packet_latency > limit
            } else {
                m.avg_occupancy > 0.5 // stalled counts as violating
            };
            if violated {
                r -= self.violation_penalty;
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(latency: f64, energy_pj: f64, throughput: f64) -> WindowMetrics {
        WindowMetrics {
            cycles: 100,
            offered_packets: 0,
            injection_burstiness: 0.0,
            phase_cycles: vec![],
            phase_offered_packets: vec![],
            injected_flits: 100,
            injected_packets: 20,
            ejected_flits: 100,
            ejected_packets: 20,
            dropped_flits: 0,
            dropped_packets: 0,
            avg_dead_links: 0.0,
            latency_samples: 20,
            avg_packet_latency: latency,
            avg_network_latency: latency * 0.8,
            avg_hops: 4.0,
            throughput,
            injection_rate: throughput,
            energy_pj,
            dynamic_pj: energy_pj * 0.7,
            leakage_pj: energy_pj * 0.3,
            avg_occupancy: 5.0,
            region_occupancy: vec![5.0],
            region_injected_flits: vec![100],
            avg_backlog: 0.0,
        }
    }

    #[test]
    fn lower_latency_earns_more() {
        let r = RewardConfig::default();
        let fast = r.compute(&metrics(20.0, 1000.0, 0.1), 16);
        let slow = r.compute(&metrics(80.0, 1000.0, 0.1), 16);
        assert!(fast > slow);
    }

    #[test]
    fn lower_energy_earns_more() {
        let r = RewardConfig::default();
        let lean = r.compute(&metrics(30.0, 500.0, 0.1), 16);
        let hungry = r.compute(&metrics(30.0, 5000.0, 0.1), 16);
        assert!(lean > hungry);
    }

    #[test]
    fn higher_throughput_earns_more() {
        let r = RewardConfig::default();
        let hi = r.compute(&metrics(30.0, 1000.0, 0.3), 16);
        let lo = r.compute(&metrics(30.0, 1000.0, 0.05), 16);
        assert!(hi > lo);
    }

    #[test]
    fn latency_violation_is_penalized() {
        let r = RewardConfig::default();
        let ok = r.compute(&metrics(79.0, 1000.0, 0.1), 16);
        let bad = r.compute(&metrics(81.0, 1000.0, 0.1), 16);
        // The marginal latency difference is tiny; the penalty dominates.
        assert!(ok - bad > 3.5, "penalty should cost ~4: ok={ok}, bad={bad}");
    }

    #[test]
    fn stalled_traffic_reads_as_violation() {
        let r = RewardConfig::default();
        let mut m = metrics(0.0, 1000.0, 0.0);
        m.latency_samples = 0;
        m.avg_occupancy = 100.0;
        let stalled = r.compute(&m, 16);
        m.avg_occupancy = 0.0;
        let idle = r.compute(&m, 16);
        assert!(
            idle > stalled,
            "a stalled network must score below an idle one"
        );
    }

    #[test]
    fn normalizers_are_sane() {
        let r = RewardConfig::default();
        let m = metrics(60.0, 6400.0, 0.1);
        assert!((r.normalized_latency(&m) - 1.0).abs() < 1e-9);
        // 6400 pJ / (100 cycles × 16 nodes) = 4 pJ/node/cycle = scale.
        assert!((r.normalized_energy(&m, 16) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deeper_backlog_scores_worse() {
        let r = RewardConfig::default();
        let shallow = metrics(70.0, 1000.0, 0.1);
        let mut deep = shallow.clone();
        deep.avg_backlog = 2000.0; // 125 flits/node on 16 nodes
        assert!(
            r.compute(&shallow, 16) > r.compute(&deep, 16) + 1.0,
            "deep saturation must cost via the backlog term"
        );
        // The term is capped: even absurd backlog stays finite.
        deep.avg_backlog = 1e12;
        assert!(r.compute(&deep, 16).is_finite());
    }

    #[test]
    fn biased_variants_shift_tradeoff() {
        let m_fast_hungry = metrics(20.0, 8000.0, 0.1);
        let m_slow_lean = metrics(80.0, 800.0, 0.1);
        let e = RewardConfig::energy_biased();
        assert!(e.compute(&m_slow_lean, 16) > e.compute(&m_fast_hungry, 16));
        let l = RewardConfig::latency_biased();
        assert!(l.compute(&m_fast_hungry, 16) > l.compute(&m_slow_lean, 16));
    }
}
