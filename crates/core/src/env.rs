//! `NocEnv`: the Gym-style environment that wraps the cycle-level simulator
//! behind the [`rl::Environment`] interface.
//!
//! One environment step = one control epoch: actuate the chosen
//! configuration, run the network for `epoch_cycles`, observe the epoch
//! telemetry, and score it with the reward function. Episodes draw their
//! traffic from a menu of specs so the trained policy generalizes across
//! patterns, rates, and phase behavior.

use crate::action::ActionSpace;
use crate::reward::RewardConfig;
use crate::state::StateEncoder;
use noc_sim::{
    InjectionProcess, SimConfig, SimError, SimResult, Simulator, TrafficPattern, TrafficSpec,
    WorkloadPhase, WorkloadSpec,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl::{Environment, Step};
use serde::{Deserialize, Serialize};

/// Configuration of the self-configuration environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NocEnvConfig {
    /// Base simulator configuration (regions, VF table, topology, ...).
    pub sim: SimConfig,
    /// Cycles per control epoch.
    pub epoch_cycles: u64,
    /// Control epochs per episode.
    pub epochs_per_episode: usize,
    /// Action space.
    pub action_space: ActionSpace,
    /// Reward function.
    pub reward: RewardConfig,
    /// Traffic specs sampled per episode (uniformly at random). Empty means
    /// "use `sim.traffic` for every episode".
    pub traffic_menu: Vec<TrafficSpec>,
    /// Seed for episode randomization (traffic choice and per-episode sim
    /// seeds).
    pub seed: u64,
}

impl Default for NocEnvConfig {
    /// Paper-style default: 8×8 mesh, 2×2 regions, 500-cycle epochs, 40
    /// epochs per episode, per-region delta actions, a traffic menu spanning
    /// uniform/transpose/hotspot at several rates.
    fn default() -> Self {
        let sim = SimConfig::default();
        let menu = standard_traffic_menu();
        NocEnvConfig {
            action_space: ActionSpace::PerRegionDelta {
                num_regions: sim.regions_x * sim.regions_y,
                num_levels: sim.vf_table.num_levels(),
            },
            sim,
            epoch_cycles: 500,
            epochs_per_episode: 40,
            reward: RewardConfig::default(),
            traffic_menu: menu,
            seed: 0,
        }
    }
}

impl NocEnvConfig {
    /// The paper-style training environment for an arbitrary fabric: action
    /// space and observation layout are derived from `sim` (per-region delta
    /// actions over its region grid and VF table), with the standard traffic
    /// menu and the default reward. This is the one construction every
    /// training entry point (CLI `train`, bench policy cache, `train_grid`)
    /// shares, so a policy trained anywhere deploys anywhere the fabric
    /// shape matches.
    pub fn for_sim(sim: SimConfig, seed: u64) -> Self {
        NocEnvConfig {
            action_space: ActionSpace::PerRegionDelta {
                num_regions: sim.regions_x * sim.regions_y,
                num_levels: sim.vf_table.num_levels(),
            },
            sim,
            epoch_cycles: 500,
            epochs_per_episode: 40,
            reward: RewardConfig::default(),
            traffic_menu: standard_traffic_menu(),
            seed,
        }
    }
}

/// The traffic menu used by the paper-style training runs: three patterns ×
/// three rates (Bernoulli), a bursty on/off workload, and one phase-changing
/// workload with a bursty regime — so the policy sees workload shifts and
/// clumped arrivals during training, not just stationary loads.
pub fn standard_traffic_menu() -> Vec<TrafficSpec> {
    let mut menu = Vec::new();
    for rate in [0.05, 0.12, 0.22] {
        menu.push(TrafficSpec::stationary(TrafficPattern::Uniform, rate));
        menu.push(TrafficSpec::stationary(TrafficPattern::Transpose, rate));
        menu.push(TrafficSpec::stationary(
            TrafficPattern::Hotspot {
                hotspots: vec![noc_sim::NodeId(0)],
                fraction: 0.3,
            },
            rate,
        ));
    }
    // Bursty on/off uniform at the mid load (mean rate_on/2 = 0.12).
    menu.push(TrafficSpec::Workload(WorkloadSpec::stationary(
        TrafficPattern::Uniform,
        InjectionProcess::Bursty {
            rate_on: 0.24,
            switch: 0.02,
        },
    )));
    // Idle → burst → bursty transpose → near-idle, repeating.
    menu.push(TrafficSpec::Workload(WorkloadSpec::new(vec![
        WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.03, 3000),
        WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.25, 3000),
        WorkloadPhase::new(
            TrafficPattern::Transpose,
            InjectionProcess::Bursty {
                rate_on: 0.24,
                switch: 0.02,
            },
            3000,
        ),
        WorkloadPhase::bernoulli(TrafficPattern::Uniform, 0.01, 3000),
    ])));
    menu
}

/// The Gym-style NoC self-configuration environment.
///
/// ```
/// use noc_selfconf::{NocEnv, NocEnvConfig};
/// use noc_sim::SimConfig;
/// use rl::Environment;
///
/// let mut env = NocEnv::new(NocEnvConfig {
///     sim: SimConfig::default().with_size(4, 4).with_regions(2, 2),
///     epoch_cycles: 100,
///     epochs_per_episode: 2,
///     ..NocEnvConfig::default()
/// })?;
/// let state = env.reset();
/// assert_eq!(state.len(), env.state_dim());
/// let step = env.step(0); // hold the current configuration
/// assert!(step.reward.is_finite());
/// # Ok::<(), noc_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct NocEnv {
    config: NocEnvConfig,
    encoder: StateEncoder,
    sim: Simulator,
    rng: StdRng,
    episode: u64,
    epoch: usize,
    /// Metrics of the most recent epoch (for inspection by trainers/logs).
    last_metrics: Option<noc_sim::WindowMetrics>,
    last_reward: f64,
}

impl NocEnv {
    /// Build the environment.
    ///
    /// # Errors
    /// Returns an error if the simulator configuration or any menu entry is
    /// invalid, or if the action space disagrees with the simulator's region
    /// or level counts.
    pub fn new(config: NocEnvConfig) -> SimResult<Self> {
        config.sim.validate()?;
        let sim = Simulator::new(config.sim.clone())?;
        let topo = sim.network().topology();
        for spec in &config.traffic_menu {
            spec.validate(topo)?;
        }
        let regions = sim.network().regions().num_regions();
        let levels = config.sim.vf_table.num_levels();
        match &config.action_space {
            ActionSpace::PerRegionDelta {
                num_regions,
                num_levels,
            } => {
                if *num_regions != regions || *num_levels != levels {
                    return Err(SimError::InvalidConfig(format!(
                        "action space expects {num_regions} regions / {num_levels} levels, \
                         simulator has {regions} / {levels}"
                    )));
                }
            }
            ActionSpace::UniformLevel { num_levels }
            | ActionSpace::LevelAndRouting { num_levels, .. } => {
                if *num_levels != levels {
                    return Err(SimError::InvalidConfig(format!(
                        "action space expects {num_levels} levels, simulator has {levels}"
                    )));
                }
            }
        }
        // A routing-controlling space must only offer algorithms the
        // simulator's topology supports — otherwise `apply` would fail mid-
        // episode the first time the agent picks the bad arm.
        if let ActionSpace::LevelAndRouting { routings, .. } = &config.action_space {
            for &r in routings {
                if !r.supports(config.sim.kind) {
                    return Err(SimError::InvalidConfig(format!(
                        "action space offers routing {r:?}, unsupported on the \
                         {:?} topology (use RoutingAlgorithm::for_topology)",
                        config.sim.kind
                    )));
                }
            }
        }
        let region_nodes = (0..regions)
            .map(|r| sim.network().regions().nodes_in(topo, r).len())
            .collect();
        let encoder = StateEncoder::new(
            sim.network().region_capacity(),
            region_nodes,
            levels,
            topo.num_nodes(),
        );
        let rng = StdRng::seed_from_u64(config.seed);
        Ok(NocEnv {
            config,
            encoder,
            sim,
            rng,
            episode: 0,
            epoch: 0,
            last_metrics: None,
            last_reward: 0.0,
        })
    }

    /// The environment's configuration.
    pub fn config(&self) -> &NocEnvConfig {
        &self.config
    }

    /// The state encoder (exposed so controllers can share the encoding).
    pub fn encoder(&self) -> &StateEncoder {
        &self.encoder
    }

    /// The underlying simulator (telemetry inspection).
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// Telemetry of the most recent epoch.
    pub fn last_metrics(&self) -> Option<&noc_sim::WindowMetrics> {
        self.last_metrics.as_ref()
    }

    /// Reward of the most recent epoch.
    pub fn last_reward(&self) -> f64 {
        self.last_reward
    }

    /// Episodes completed or started so far.
    pub fn episode(&self) -> u64 {
        self.episode
    }

    fn run_epoch_and_encode(&mut self) -> Vec<f32> {
        let metrics = self.sim.run_epoch(self.config.epoch_cycles);
        let state = self.encoder.encode(&metrics, self.sim.region_levels());
        self.last_metrics = Some(metrics);
        state
    }
}

impl Environment for NocEnv {
    fn state_dim(&self) -> usize {
        self.encoder.state_dim()
    }

    fn num_actions(&self) -> usize {
        self.config.action_space.num_actions()
    }

    /// Start a new episode: rebuild the simulator with a fresh seed and a
    /// traffic spec drawn from the menu, set every region to a *random*
    /// initial V/F level (exploring starts — the agent must learn to correct
    /// mismatched configurations, including recovering from saturation), and
    /// run one epoch to produce the initial observation.
    fn reset(&mut self) -> Vec<f32> {
        self.episode += 1;
        self.epoch = 0;
        let mut cfg = self.config.sim.clone();
        cfg.seed = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9)
            .wrapping_add(self.episode);
        if !self.config.traffic_menu.is_empty() {
            let pick = self.rng.gen_range(0..self.config.traffic_menu.len());
            cfg.traffic = self.config.traffic_menu[pick].clone();
        }
        self.sim = Simulator::new(cfg).expect("validated at construction");
        let levels = self.config.sim.vf_table.num_levels();
        let regions = self.sim.network().regions().num_regions();
        for r in 0..regions {
            let start = self.rng.gen_range(0..levels);
            self.sim.set_region_level(r, start).expect("level in range");
        }
        self.run_epoch_and_encode()
    }

    fn step(&mut self, action: usize) -> Step {
        self.config
            .action_space
            .apply(action, &mut self.sim)
            .expect("action space validated against simulator");
        let state = self.run_epoch_and_encode();
        let metrics = self.last_metrics.as_ref().expect("epoch just ran");
        let reward = self
            .config
            .reward
            .compute(metrics, self.sim.network().topology().num_nodes());
        self.last_reward = reward;
        self.epoch += 1;
        Step {
            state,
            reward,
            done: self.epoch >= self.config.epochs_per_episode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_sim::TrafficPattern;

    fn small_env() -> NocEnv {
        let sim = SimConfig::default()
            .with_size(4, 4)
            .with_traffic(TrafficPattern::Uniform, 0.1)
            .with_regions(2, 2);
        NocEnv::new(NocEnvConfig {
            action_space: ActionSpace::PerRegionDelta {
                num_regions: 4,
                num_levels: 4,
            },
            sim,
            epoch_cycles: 200,
            epochs_per_episode: 5,
            reward: RewardConfig::default(),
            traffic_menu: vec![],
            seed: 3,
        })
        .unwrap()
    }

    #[test]
    fn dimensions_are_consistent() {
        let env = small_env();
        assert_eq!(env.state_dim(), 3 * 4 + 5);
        assert_eq!(env.num_actions(), 11);
    }

    #[test]
    fn observation_exposes_fabric_degradation() {
        use noc_sim::{FaultEvent, FaultPlan, FaultTarget, NodeId, Port};
        let faulted = |plan: FaultPlan| {
            let sim = SimConfig::default()
                .with_size(4, 4)
                .with_traffic(TrafficPattern::Uniform, 0.05)
                .with_regions(2, 2)
                .with_faults(plan);
            let mut env = NocEnv::new(NocEnvConfig {
                action_space: ActionSpace::PerRegionDelta {
                    num_regions: 4,
                    num_levels: 4,
                },
                sim,
                epoch_cycles: 100,
                epochs_per_episode: 2,
                reward: RewardConfig::default(),
                traffic_menu: vec![],
                seed: 3,
            })
            .unwrap();
            *env.reset().last().unwrap()
        };
        let healthy = faulted(FaultPlan::empty());
        assert_eq!(healthy, 0.0, "healthy fabric reads zero degradation");
        let degraded = faulted(
            FaultPlan::new(vec![FaultEvent {
                start: 0,
                duration: None,
                target: FaultTarget::Link {
                    node: NodeId(5),
                    port: Port::East,
                },
            }])
            .unwrap(),
        );
        assert!(
            degraded > 0.0,
            "the controller must observe the dead link: {degraded}"
        );
    }

    #[test]
    fn observation_exposes_workload_burstiness() {
        let with_spec = |spec: TrafficSpec| {
            let sim = SimConfig::default()
                .with_size(4, 4)
                .with_regions(2, 2)
                .with_traffic_spec(spec);
            let mut env = NocEnv::new(NocEnvConfig {
                action_space: ActionSpace::PerRegionDelta {
                    num_regions: 4,
                    num_levels: 4,
                },
                sim,
                epoch_cycles: 2000,
                epochs_per_episode: 2,
                reward: RewardConfig::default(),
                traffic_menu: vec![],
                seed: 3,
            })
            .unwrap();
            let s = env.reset();
            s[s.len() - 2] // burstiness feature (degradation is last)
        };
        let bern = with_spec(TrafficSpec::stationary(TrafficPattern::Uniform, 0.12));
        let bursty = with_spec(TrafficSpec::Workload(WorkloadSpec::stationary(
            TrafficPattern::Uniform,
            InjectionProcess::Bursty {
                rate_on: 0.24,
                switch: 0.02,
            },
        )));
        assert!(
            bursty > 1.2 * bern,
            "the controller must observe the workload's burstiness: \
             bursty {bursty} vs bernoulli {bern}"
        );
    }

    #[test]
    fn episode_runs_to_done() {
        let mut env = small_env();
        let s0 = env.reset();
        assert_eq!(s0.len(), env.state_dim());
        let mut done = false;
        let mut steps = 0;
        while !done {
            let st = env.step(0);
            done = st.done;
            steps += 1;
            assert!(st.reward.is_finite());
            assert!(steps <= 5, "episode must end after epochs_per_episode");
        }
        assert_eq!(steps, 5);
        assert!(env.last_metrics().is_some());
    }

    #[test]
    fn actions_change_levels() {
        let mut env = small_env();
        env.reset();
        let before = env.simulator().region_levels().to_vec();
        env.step(1); // raise region 0
        let after = env.simulator().region_levels();
        assert_eq!(after[0], (before[0] + 1).min(3));
        assert_eq!(&after[1..], &before[1..]);
    }

    #[test]
    fn reset_uses_exploring_starts() {
        let mut env = small_env();
        let mut seen = std::collections::HashSet::new();
        let mut mixed = false;
        for _ in 0..30 {
            env.reset();
            let l = env.simulator().region_levels().to_vec();
            mixed |= l.iter().any(|&x| x != l[0]);
            seen.extend(l.iter().copied());
        }
        assert!(seen.len() >= 3, "initial levels should vary: {seen:?}");
        assert!(
            mixed,
            "exploring starts should produce mixed configurations"
        );
    }

    #[test]
    fn traffic_menu_varies_across_episodes() {
        let sim = SimConfig::default()
            .with_size(4, 4)
            .with_traffic(TrafficPattern::Uniform, 0.1)
            .with_regions(2, 2);
        let mut env = NocEnv::new(NocEnvConfig {
            action_space: ActionSpace::PerRegionDelta {
                num_regions: 4,
                num_levels: 4,
            },
            sim,
            epoch_cycles: 100,
            epochs_per_episode: 2,
            reward: RewardConfig::default(),
            traffic_menu: vec![
                TrafficSpec::stationary(TrafficPattern::Uniform, 0.02),
                TrafficSpec::stationary(TrafficPattern::Uniform, 0.30),
            ],
            seed: 1,
        })
        .unwrap();
        let mut rates = Vec::new();
        for _ in 0..8 {
            env.reset();
            env.step(0);
            rates.push(env.last_metrics().unwrap().injection_rate);
        }
        let lo = rates.iter().cloned().fold(f64::MAX, f64::min);
        let hi = rates.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            hi > 4.0 * lo,
            "menu should produce distinct loads: {rates:?}"
        );
    }

    /// The self-configuration environment runs on tori: episodes reset,
    /// step, observe, and a routing-controlling action space can switch
    /// between the torus algorithms mid-episode.
    #[test]
    fn env_runs_on_torus() {
        use noc_sim::{RoutingAlgorithm, TopologyKind};
        let sim = SimConfig::default()
            .with_size(4, 4)
            .with_topology(TopologyKind::Torus)
            .with_routing(RoutingAlgorithm::TorusDor)
            .with_traffic(TrafficPattern::Uniform, 0.1)
            .with_regions(2, 2);
        let mut env = NocEnv::new(NocEnvConfig {
            action_space: ActionSpace::LevelAndRouting {
                num_levels: 4,
                routings: vec![
                    RoutingAlgorithm::TorusDor,
                    RoutingAlgorithm::TorusMinAdaptive,
                ],
            },
            sim: sim.clone(),
            epoch_cycles: 200,
            epochs_per_episode: 3,
            reward: RewardConfig::default(),
            traffic_menu: vec![],
            seed: 3,
        })
        .unwrap();
        let s0 = env.reset();
        assert_eq!(s0.len(), env.state_dim());
        // Action 3 = level 1, second routing (the adaptive torus algorithm).
        let st = env.step(3);
        assert!(st.reward.is_finite());
        assert_eq!(
            env.simulator().network().routing(),
            RoutingAlgorithm::TorusMinAdaptive
        );
        assert!(env.last_metrics().unwrap().injected_flits > 0);

        // Mesh-only routings in the action space are rejected up front on a
        // torus simulator, not mid-episode.
        let bad = NocEnvConfig {
            action_space: ActionSpace::LevelAndRouting {
                num_levels: 4,
                routings: vec![RoutingAlgorithm::Xy, RoutingAlgorithm::OddEven],
            },
            sim,
            epoch_cycles: 200,
            epochs_per_episode: 3,
            reward: RewardConfig::default(),
            traffic_menu: vec![],
            seed: 3,
        };
        assert!(NocEnv::new(bad).is_err());
    }

    #[test]
    fn mismatched_action_space_is_rejected() {
        let sim = SimConfig::default().with_size(4, 4).with_regions(2, 2);
        let bad = NocEnvConfig {
            action_space: ActionSpace::PerRegionDelta {
                num_regions: 8,
                num_levels: 4,
            },
            sim,
            ..NocEnvConfig::default()
        };
        assert!(NocEnv::new(bad).is_err());
    }

    #[test]
    fn lower_levels_reduce_energy_in_light_traffic() {
        let mut env = small_env();
        env.reset();
        // Drop everything to the lowest level.
        for a in [2, 4, 6, 8] {
            env.step(a);
        }
        let low = env.last_metrics().unwrap().energy_pj;
        env.reset();
        for _ in 0..4 {
            env.step(0);
        }
        let high = env.last_metrics().unwrap().energy_pj;
        assert!(
            low < high,
            "min level must burn less energy: {low} vs {high}"
        );
    }
}
