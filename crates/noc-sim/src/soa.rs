//! Structure-of-arrays router state for the whole fabric.
//!
//! [`FabricState`] holds every router's pipeline state in flat arrays
//! indexed by `(router, port, vc)` — flit buffers, route locks, granted
//! downstream VCs, VC owners, drain flags, downstream credits, and the
//! arbitration pointers — instead of a `Vec` of boxed per-router structs.
//! A partition tile (a contiguous node range) is then literally a
//! contiguous slice of each array: [`FabricState::split_tiles`] carves the
//! fabric into disjoint [`FabricTile`] views that worker threads step
//! concurrently without sharing a cache line of mutable state.
//!
//! The router pipeline itself (SA/ST, VA, RC — see [`crate::router`]) is
//! implemented here against the flat layout, with two supporting
//! structures per router:
//!
//! * an O(1) occupancy counter (`occ`), so the cycle loop's
//!   active-router test is one load, and
//! * an occupancy bitmask (`occ_mask`) with bit `port * num_vcs + vc` set
//!   iff that input VC buffers at least one flit. All three pipeline
//!   stages iterate set bits only, and switch allocation becomes
//!   branchless two-stage arbitration: stage one builds per-output-port
//!   request masks in a single pass over the occupied VCs; stage two
//!   grants with a rotate-free round-robin pick
//!   (`mask & (!0 << ptr)`, then `trailing_zeros`), which reproduces
//!   [`crate::arbiter::RoundRobinArbiter`] semantics exactly — first
//!   asserted index at or after the pointer, else first asserted index,
//!   pointer advances past the winner.
//!
//! Both counters are derivable from the buffers; `debug_assert!` recounts
//! (exercised by the debug-profile CI job) and the custom `Deserialize`
//! impl keep them honest. Behavior is byte-identical to the pre-SoA
//! per-router structs: the stages visit VCs in the same `(port, vc)`
//! order, record the same energy events in the same order, and emit the
//! same [`RouterEvent`]s, pinned by the golden and differential tests.

use crate::config::SwitchArb;
use crate::flit::{Flit, PacketId};
use crate::power::PowerEvent;
use crate::router::{RouterCtx, RouterEvent};
use crate::routing::{route, route_live, route_table, RoutingAlgorithm};
use crate::topology::{NodeId, Port};
use crate::vc::VcBuffer;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Flat pipeline state for `routers` routers, one array per field.
///
/// Index layout: input-VC and output-VC arrays use
/// `router * (Port::COUNT * num_vcs) + port * num_vcs + vc`; per-port
/// arrays use `router * Port::COUNT + port`; per-router arrays use the
/// router index directly.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FabricState {
    routers: usize,
    num_vcs: usize,
    vc_depth: usize,
    /// When true, VC allocation partitions VCs into two dateline classes
    /// (tori). Requires `num_vcs >= 2`.
    vc_partition: bool,
    /// Input flit buffers, `(router, port, vc)`.
    bufs: Vec<VcBuffer>,
    /// Route lock per input VC: output port assigned by route computation.
    in_route: Vec<Option<Port>>,
    /// Downstream VC granted by VC allocation, per input VC.
    in_out_vc: Vec<Option<u8>>,
    /// Packet occupying each input VC (recorded at route computation).
    in_owner: Vec<Option<PacketId>>,
    /// Drain flag per input VC: the occupying packet is unroutable and its
    /// flits are discarded as they arrive.
    in_dropping: Vec<bool>,
    /// Downstream VC claims, `(router, port, vc)` — the upstream view of
    /// who owns the VC at the far end of each output.
    out_owner: Vec<Option<PacketId>>,
    /// Free downstream buffer slots per output VC (credits).
    out_credits: Vec<u16>,
    /// Switch-allocation round-robin pointer per `(router, out_port)`,
    /// over flattened `(in_port, vc)` requesters.
    sw_next: Vec<u32>,
    /// Per-packet switch hold per `(router, out_port)`: the flat
    /// `(in_port, vc)` bit of the input VC whose packet currently owns the
    /// output port (`u32::MAX` = free). Only written under
    /// [`SwitchArb::PerPacket`]; acquired by a head-flit grant, released by
    /// the tail-flit grant, and cleared by fault purges when the holding VC
    /// is released. Configs serialized before the field existed
    /// deserialize to all-free.
    #[serde(default)]
    sw_hold: Vec<u32>,
    /// VC-allocation rotation pointer per `(router, out_port)`.
    va_ptr: Vec<u32>,
    /// Buffered-flit count per router, maintained on accept/pop so the
    /// active-router test is O(1). Derivable: deserialization rebuilds it
    /// from the buffers rather than trusting the wire.
    #[serde(skip)]
    occ: Vec<u32>,
    /// Occupancy bitmask per router: bit `port * num_vcs + vc` set iff
    /// that input VC is non-empty. Derivable, rebuilt like `occ`.
    #[serde(skip)]
    occ_mask: Vec<u64>,
}

// Deserialization is written by hand (over a derive-backed shadow struct)
// so the occupancy counter and bitmask are always recomputed from the
// deserialized buffers. Trusting stored counters — or defaulting them to
// zero — would desynchronize them from the buffers and stall the
// pipeline: `step_node` short-circuits on `occ == 0`.
impl<'de> Deserialize<'de> for FabricState {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        #[derive(Deserialize)]
        struct Shadow {
            routers: usize,
            num_vcs: usize,
            vc_depth: usize,
            vc_partition: bool,
            bufs: Vec<VcBuffer>,
            in_route: Vec<Option<Port>>,
            in_out_vc: Vec<Option<u8>>,
            in_owner: Vec<Option<PacketId>>,
            in_dropping: Vec<bool>,
            out_owner: Vec<Option<PacketId>>,
            out_credits: Vec<u16>,
            sw_next: Vec<u32>,
            #[serde(default)]
            sw_hold: Vec<u32>,
            va_ptr: Vec<u32>,
        }
        let s = Shadow::deserialize(d)?;
        let pv = Port::COUNT * s.num_vcs;
        let (mut occ, mut occ_mask) = (Vec::new(), Vec::new());
        for r in 0..s.routers {
            let chunk = &s.bufs[r * pv..(r + 1) * pv];
            occ.push(chunk.iter().map(|b| b.len() as u32).sum());
            let mut mask = 0u64;
            for (b, buf) in chunk.iter().enumerate() {
                if !buf.is_empty() {
                    mask |= 1 << b;
                }
            }
            occ_mask.push(mask);
        }
        // States serialized before the per-packet hold existed carry no
        // `sw_hold`; they can only have run per-flit, where every hold is
        // free.
        let sw_hold = if s.sw_hold.is_empty() {
            vec![u32::MAX; s.routers * Port::COUNT]
        } else {
            s.sw_hold
        };
        Ok(FabricState {
            routers: s.routers,
            num_vcs: s.num_vcs,
            vc_depth: s.vc_depth,
            vc_partition: s.vc_partition,
            bufs: s.bufs,
            in_route: s.in_route,
            in_out_vc: s.in_out_vc,
            in_owner: s.in_owner,
            in_dropping: s.in_dropping,
            out_owner: s.out_owner,
            out_credits: s.out_credits,
            sw_next: s.sw_next,
            sw_hold,
            va_ptr: s.va_ptr,
            occ,
            occ_mask,
        })
    }
}

impl FabricState {
    /// Idle state for `routers` routers.
    ///
    /// # Panics
    /// Panics if `num_vcs == 0`, `vc_depth == 0`, `vc_partition` is set
    /// with fewer than two VCs, or the flattened `(port, vc)` index does
    /// not fit the occupancy bitmask (`Port::COUNT * num_vcs > 64`).
    pub fn new(routers: usize, num_vcs: usize, vc_depth: usize, vc_partition: bool) -> Self {
        assert!(num_vcs > 0, "router needs at least one VC");
        assert!(vc_depth > 0, "VC depth must be positive");
        assert!(
            !vc_partition || num_vcs >= 2,
            "VC partitioning requires >= 2 VCs"
        );
        assert!(
            Port::COUNT * num_vcs <= 64,
            "flattened (port, vc) state is bitmask-indexed: at most {} VCs",
            64 / Port::COUNT
        );
        let pv = Port::COUNT * num_vcs;
        FabricState {
            routers,
            num_vcs,
            vc_depth,
            vc_partition,
            bufs: (0..routers * pv).map(|_| VcBuffer::new(vc_depth)).collect(),
            in_route: vec![None; routers * pv],
            in_out_vc: vec![None; routers * pv],
            in_owner: vec![None; routers * pv],
            in_dropping: vec![false; routers * pv],
            out_owner: vec![None; routers * pv],
            out_credits: vec![vc_depth as u16; routers * pv],
            sw_next: vec![0; routers * Port::COUNT],
            sw_hold: vec![u32::MAX; routers * Port::COUNT],
            va_ptr: vec![0; routers * Port::COUNT],
            occ: vec![0; routers],
            occ_mask: vec![0; routers],
        }
    }

    /// Number of routers.
    pub fn num_routers(&self) -> usize {
        self.routers
    }

    /// Virtual channels per port.
    pub fn num_vcs(&self) -> usize {
        self.num_vcs
    }

    /// Buffer depth per VC, in flits.
    pub fn vc_depth(&self) -> usize {
        self.vc_depth
    }

    #[inline]
    fn pv(&self) -> usize {
        Port::COUNT * self.num_vcs
    }

    #[inline]
    fn idx(&self, r: usize, port: Port, vc: usize) -> usize {
        r * self.pv() + port.index() * self.num_vcs + vc
    }

    /// Flits buffered in router `r`, with a debug recount against the O(1)
    /// counter and the occupancy bitmask.
    pub fn occupancy(&self, r: usize) -> usize {
        let pv = self.pv();
        debug_assert_eq!(
            self.occ[r] as usize,
            self.bufs[r * pv..(r + 1) * pv]
                .iter()
                .map(|b| b.len())
                .sum::<usize>(),
            "occupancy counter out of sync with the buffers"
        );
        debug_assert!(
            (0..pv).all(
                |b| (self.occ_mask[r] >> b) & 1 == u64::from(!self.bufs[r * pv + b].is_empty())
            ),
            "occupancy bitmask out of sync with the buffers"
        );
        self.occ[r] as usize
    }

    /// Per-router occupancy counters (no recount; the cycle loop's
    /// active-router scan and region sampling read this directly).
    pub fn occ_counts(&self) -> &[u32] {
        &self.occ
    }

    /// Total buffering capacity per router.
    pub fn buffer_capacity(&self) -> usize {
        self.pv() * self.vc_depth
    }

    /// Whether input VC `(port, vc)` of router `r` can accept a flit.
    pub fn can_accept(&self, r: usize, port: Port, vc: usize) -> bool {
        !self.bufs[self.idx(r, port, vc)].is_full()
    }

    /// Free slots the upstream view holds for output `(port, vc)`.
    pub fn credits(&self, r: usize, port: Port, vc: usize) -> usize {
        self.out_credits[self.idx(r, port, vc)] as usize
    }

    /// Downstream-VC owner for output `(port, vc)` (`None` = free).
    pub fn output_owner(&self, r: usize, port: Port, vc: usize) -> Option<PacketId> {
        self.out_owner[self.idx(r, port, vc)]
    }

    /// Route lock on input VC `(port, vc)`.
    pub fn input_route(&self, r: usize, port: Port, vc: usize) -> Option<Port> {
        self.in_route[self.idx(r, port, vc)]
    }

    /// Downstream VC granted to input VC `(port, vc)`.
    pub fn input_out_vc(&self, r: usize, port: Port, vc: usize) -> Option<usize> {
        self.in_out_vc[self.idx(r, port, vc)].map(usize::from)
    }

    /// Record the owners of router `r`'s output VCs on `port` (packets
    /// mid-transmission across that link) into `out`. Fault handling calls
    /// this for every newly dead outgoing link: those packets are severed
    /// and must be condemned network-wide.
    pub(crate) fn condemn_output_owners(&self, r: usize, port: Port, out: &mut BTreeSet<PacketId>) {
        for vc in 0..self.num_vcs {
            if let Some(pid) = self.out_owner[self.idx(r, port, vc)] {
                out.insert(pid);
            }
        }
    }

    /// Record every packet with a flit buffered in router `r` or holding
    /// one of its output claims into `out` — used when the router dies.
    pub(crate) fn condemn_all(&self, r: usize, out: &mut BTreeSet<PacketId>) {
        let pv = self.pv();
        for buf in &self.bufs[r * pv..(r + 1) * pv] {
            for flit in buf.iter() {
                out.insert(flit.packet);
            }
        }
        for pid in self.out_owner[r * pv..(r + 1) * pv].iter().flatten() {
            out.insert(*pid);
        }
    }

    /// Mutable view of the whole fabric (the serial phases — commit,
    /// fault purge, and the single-router [`crate::router::Router`]
    /// wrapper — go through this).
    pub fn tile(&mut self) -> FabricTile<'_> {
        FabricTile {
            num_vcs: self.num_vcs,
            pv: Port::COUNT * self.num_vcs,
            vc_depth: self.vc_depth,
            vc_partition: self.vc_partition,
            bufs: &mut self.bufs,
            in_route: &mut self.in_route,
            in_out_vc: &mut self.in_out_vc,
            in_owner: &mut self.in_owner,
            in_dropping: &mut self.in_dropping,
            out_owner: &mut self.out_owner,
            out_credits: &mut self.out_credits,
            sw_next: &mut self.sw_next,
            sw_hold: &mut self.sw_hold,
            va_ptr: &mut self.va_ptr,
            occ: &mut self.occ,
            occ_mask: &mut self.occ_mask,
        }
    }

    /// Carve the fabric into disjoint contiguous tiles at the router
    /// `bounds` (ascending, `bounds[0] == 0`, last == `num_routers`). Each
    /// [`FabricTile`] owns the slice of every array for its node range, so
    /// tiles can be stepped concurrently.
    ///
    /// # Panics
    /// Panics if the bounds are not ascending or do not cover the fabric.
    pub fn split_tiles(&mut self, bounds: &[usize]) -> Vec<FabricTile<'_>> {
        assert!(
            bounds.first() == Some(&0) && bounds.last() == Some(&self.routers),
            "tile bounds must cover the fabric"
        );
        let (num_vcs, pv, vc_depth, vc_partition) = (
            self.num_vcs,
            Port::COUNT * self.num_vcs,
            self.vc_depth,
            self.vc_partition,
        );
        let mut out = Vec::with_capacity(bounds.len() - 1);
        let mut bufs = self.bufs.as_mut_slice();
        let mut in_route = self.in_route.as_mut_slice();
        let mut in_out_vc = self.in_out_vc.as_mut_slice();
        let mut in_owner = self.in_owner.as_mut_slice();
        let mut in_dropping = self.in_dropping.as_mut_slice();
        let mut out_owner = self.out_owner.as_mut_slice();
        let mut out_credits = self.out_credits.as_mut_slice();
        let mut sw_next = self.sw_next.as_mut_slice();
        let mut sw_hold = self.sw_hold.as_mut_slice();
        let mut va_ptr = self.va_ptr.as_mut_slice();
        let mut occ = self.occ.as_mut_slice();
        let mut occ_mask = self.occ_mask.as_mut_slice();
        for w in bounds.windows(2) {
            let rn = w[1] - w[0];
            macro_rules! take {
                ($slice:ident, $n:expr) => {{
                    let (head, rest) = $slice.split_at_mut($n);
                    $slice = rest;
                    head
                }};
            }
            out.push(FabricTile {
                num_vcs,
                pv,
                vc_depth,
                vc_partition,
                bufs: take!(bufs, rn * pv),
                in_route: take!(in_route, rn * pv),
                in_out_vc: take!(in_out_vc, rn * pv),
                in_owner: take!(in_owner, rn * pv),
                in_dropping: take!(in_dropping, rn * pv),
                out_owner: take!(out_owner, rn * pv),
                out_credits: take!(out_credits, rn * pv),
                sw_next: take!(sw_next, rn * Port::COUNT),
                sw_hold: take!(sw_hold, rn * Port::COUNT),
                va_ptr: take!(va_ptr, rn * Port::COUNT),
                occ: take!(occ, rn),
                occ_mask: take!(occ_mask, rn),
            });
        }
        out
    }
}

/// A disjoint mutable view of a contiguous router range — the slice of
/// every [`FabricState`] array for those routers. Router indices passed to
/// the methods are tile-local (0-based within the range).
#[derive(Debug)]
pub struct FabricTile<'a> {
    num_vcs: usize,
    pv: usize,
    vc_depth: usize,
    vc_partition: bool,
    bufs: &'a mut [VcBuffer],
    in_route: &'a mut [Option<Port>],
    in_out_vc: &'a mut [Option<u8>],
    in_owner: &'a mut [Option<PacketId>],
    in_dropping: &'a mut [bool],
    out_owner: &'a mut [Option<PacketId>],
    out_credits: &'a mut [u16],
    sw_next: &'a mut [u32],
    sw_hold: &'a mut [u32],
    va_ptr: &'a mut [u32],
    occ: &'a mut [u32],
    occ_mask: &'a mut [u64],
}

impl FabricTile<'_> {
    /// Buffered flits in local router `k` (O(1), no recount — the hot
    /// active-router test).
    #[inline]
    pub fn occ_at(&self, k: usize) -> usize {
        self.occ[k] as usize
    }

    /// Buffered flits in local router `k`, with the debug recount.
    pub fn occupancy(&self, k: usize) -> usize {
        debug_assert_eq!(
            self.occ[k] as usize,
            self.bufs[k * self.pv..(k + 1) * self.pv]
                .iter()
                .map(|b| b.len())
                .sum::<usize>(),
            "occupancy counter out of sync with the buffers"
        );
        self.occ[k] as usize
    }

    /// The VC index range a flit of `vc_class` may claim at the next hop,
    /// honoring the dateline partition on tori.
    fn allowed_vcs(&self, vc_class: u8) -> std::ops::Range<usize> {
        if self.vc_partition {
            let half = self.num_vcs / 2;
            if vc_class == 0 {
                0..half
            } else {
                half..self.num_vcs
            }
        } else {
            0..self.num_vcs
        }
    }

    /// Clear per-packet state of flat input VC `idx` after the tail flit
    /// departs (or the packet is dropped/purged).
    #[inline]
    fn release(&mut self, idx: usize) {
        self.in_route[idx] = None;
        self.in_out_vc[idx] = None;
        self.in_owner[idx] = None;
        self.in_dropping[idx] = false;
    }

    /// Deposit a flit arriving on `port` of local router `k` into its VC
    /// buffer. Called by the network layer for link deliveries and local
    /// injections.
    ///
    /// # Panics
    /// Panics if the buffer is full (a flow-control violation).
    pub fn accept(&mut self, k: usize, port: Port, flit: Flit, ctx: &mut RouterCtx<'_>) {
        ctx.energy
            .record(ctx.power, PowerEvent::BufferWrite, ctx.dynamic_scale);
        let b = port.index() * self.num_vcs + flit.vc;
        self.bufs[k * self.pv + b].push(flit);
        self.occ[k] += 1;
        self.occ_mask[k] |= 1 << b;
    }

    /// Return one credit for output `(port, vc)` of local router `k`.
    pub fn return_credit(&mut self, k: usize, port: Port, vc: usize) {
        let idx = k * self.pv + port.index() * self.num_vcs + vc;
        debug_assert!(
            (self.out_credits[idx] as usize) < self.vc_depth,
            "credit overflow on {port}/{vc}"
        );
        self.out_credits[idx] += 1;
    }

    /// Execute one active cycle of local router `k` (node id `node`):
    /// SA/ST, then VA, then RC. Appends this cycle's events to the
    /// caller-owned buffer.
    pub fn step_node(
        &mut self,
        k: usize,
        node: NodeId,
        ctx: &mut RouterCtx<'_>,
        events: &mut Vec<RouterEvent>,
    ) {
        if self.occupancy(k) == 0 {
            return; // idle router: nothing to route, allocate, or move
        }
        if ctx.faults.is_some() {
            self.drain_dropped(k, events);
        }
        self.switch_allocation(k, node, ctx, events);
        self.vc_allocation(k, ctx);
        self.route_computation(k, node, ctx);
    }

    /// Discard buffered flits of packets marked `dropping` (unroutable
    /// under the active fault set), returning a credit per discarded flit
    /// so the upstream sender keeps feeding the remainder of the packet.
    /// The tail flit releases the VC.
    fn drain_dropped(&mut self, k: usize, events: &mut Vec<RouterEvent>) {
        let v = self.num_vcs;
        let b0 = k * self.pv;
        let mut m = self.occ_mask[k];
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            let idx = b0 + b;
            if !self.in_dropping[idx] {
                continue;
            }
            let (ip, vc) = (b / v, b % v);
            let mut removed = 0u32;
            while let Some(flit) = self.bufs[idx].pop() {
                removed += 1;
                let is_tail = flit.is_tail();
                events.push(RouterEvent::Drop { flit });
                events.push(RouterEvent::Credit {
                    in_port: Port::from_index(ip),
                    vc,
                });
                if is_tail {
                    self.release(idx);
                    break;
                }
            }
            self.occ[k] -= removed;
            if self.bufs[idx].is_empty() {
                self.occ_mask[k] &= !(1u64 << b);
            }
        }
    }

    /// SA/ST: one flit per output port per cycle, one per input port per
    /// cycle, round-robin among eligible input VCs. Stage one builds the
    /// per-output-port request masks in a single pass over the occupied
    /// VCs; stage two grants each output port with the rotate-free
    /// round-robin pick and masks out the winner's whole input port.
    fn switch_allocation(
        &mut self,
        k: usize,
        node: NodeId,
        ctx: &mut RouterCtx<'_>,
        events: &mut Vec<RouterEvent>,
    ) {
        let v = self.num_vcs;
        let b0 = k * self.pv;
        // Stage one: request masks over flattened (in_port, vc), one per
        // output port. A VC requests iff it is routed, holds a downstream
        // VC, is non-empty (the occupancy mask), and has a credit (the
        // Local output sinks ejected flits unconditionally).
        let mut req = [0u64; Port::COUNT];
        let mut m = self.occ_mask[k];
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            let idx = b0 + b;
            let (Some(out_port), Some(ovc)) = (self.in_route[idx], self.in_out_vc[idx]) else {
                continue;
            };
            let has_credit = out_port == Port::Local
                || self.out_credits[b0 + out_port.index() * v + ovc as usize] > 0;
            if has_credit {
                req[out_port.index()] |= 1 << b;
            }
        }
        // Stage two: grant per output port in fixed port order. Granting
        // pops the flit and decrements the credit it consumes, which never
        // changes another output port's request set, so the masks stay
        // valid across the loop with only the used-input clearing.
        let per_packet = ctx.arb == SwitchArb::PerPacket;
        let n = self.pv as u32;
        let vc_bits = (1u64 << v) - 1;
        let mut used_inputs = 0u64;
        for out_port in Port::ALL {
            let op = out_port.index();
            let mut reqs = req[op] & !used_inputs;
            if per_packet {
                // A held output port serves only the holding input VC; if
                // the holder cannot request this cycle (no flit arrived
                // yet, no credit, its input port already granted), the
                // port idles — the modeled head-of-line blocking.
                let hold = self.sw_hold[k * Port::COUNT + op];
                if hold != u32::MAX {
                    reqs &= 1 << hold;
                }
            }
            if reqs == 0 {
                continue; // no grant: the round-robin pointer holds
            }
            let ptr = self.sw_next[k * Port::COUNT + op];
            // First asserted index at or after the pointer, else first
            // asserted index — exactly RoundRobinArbiter::grant.
            let hi = reqs & (u64::MAX << ptr);
            let win = if hi != 0 {
                hi.trailing_zeros()
            } else {
                reqs.trailing_zeros()
            };
            self.sw_next[k * Port::COUNT + op] = (win + 1) % n;
            let b = win as usize;
            let (ip, vc) = (b / v, b % v);
            used_inputs |= vc_bits << (ip * v);
            let in_port = Port::from_index(ip);
            let idx = b0 + b;
            let out_vc = self.in_out_vc[idx].expect("granted VC has out_vc") as usize;
            let mut flit = self.bufs[idx].pop().expect("granted VC has a flit");
            self.occ[k] -= 1;
            if self.bufs[idx].is_empty() {
                self.occ_mask[k] &= !(1u64 << b);
            }
            let is_tail = flit.is_tail();
            if per_packet {
                // Head (or single-flit) grant acquires the hold, the tail
                // grant releases it. For single-flit packets the hold is
                // set and cleared within this one grant, so per-packet
                // arbitration is byte-identical to per-flit there.
                self.sw_hold[k * Port::COUNT + op] = if is_tail { u32::MAX } else { win };
            }
            if is_tail {
                self.release(idx);
            }
            ctx.energy
                .record(ctx.power, PowerEvent::BufferRead, ctx.dynamic_scale);
            ctx.energy
                .record(ctx.power, PowerEvent::SwitchArb, ctx.dynamic_scale);
            ctx.energy
                .record(ctx.power, PowerEvent::Crossbar, ctx.dynamic_scale);
            if out_port == Port::Local {
                events.push(RouterEvent::Eject { flit });
            } else {
                debug_assert!(
                    ctx.faults.is_none_or(|ls| ls.is_link_up(node, out_port)),
                    "SA forwarded into a dead link (boundary purge missed a route)"
                );
                flit.vc = out_vc;
                flit.hops += 1;
                let oidx = b0 + op * v + out_vc;
                debug_assert!(self.out_credits[oidx] > 0, "SA granted without credit");
                self.out_credits[oidx] -= 1;
                if is_tail {
                    self.out_owner[oidx] = None;
                }
                events.push(RouterEvent::Forward { out_port, flit });
            }
            events.push(RouterEvent::Credit { in_port, vc });
        }
    }

    /// VA: head flits holding a route claim a free downstream VC.
    fn vc_allocation(&mut self, k: usize, ctx: &mut RouterCtx<'_>) {
        let v = self.num_vcs;
        let b0 = k * self.pv;
        let mut m = self.occ_mask[k];
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            let idx = b0 + b;
            let Some(out_port) = self.in_route[idx] else {
                continue;
            };
            if self.in_out_vc[idx].is_some() {
                continue;
            }
            let op = out_port.index();
            if out_port == Port::Local {
                // Ejection needs no downstream VC; claim slot 0 nominally.
                self.in_out_vc[idx] = Some(0);
                ctx.energy
                    .record(ctx.power, PowerEvent::VcAlloc, ctx.dynamic_scale);
                continue;
            }
            let flit = self.bufs[idx].front().expect("awaiting implies flit");
            debug_assert!(flit.is_head(), "VA on a non-head flit");
            let (packet, vc_class) = (flit.packet, flit.vc_class);
            let range = self.allowed_vcs(vc_class);
            let span = range.len();
            let start = (self.va_ptr[k * Port::COUNT + op] as usize) % span.max(1);
            let granted = (0..span)
                .map(|off| range.start + (start + off) % span)
                .find(|&ovc| self.out_owner[b0 + op * v + ovc].is_none());
            if let Some(ovc) = granted {
                self.out_owner[b0 + op * v + ovc] = Some(packet);
                self.in_out_vc[idx] = Some(ovc as u8);
                let ptr = &mut self.va_ptr[k * Port::COUNT + op];
                *ptr = ptr.wrapping_add(1);
                ctx.energy
                    .record(ctx.power, PowerEvent::VcAlloc, ctx.dynamic_scale);
            }
        }
    }

    /// RC: compute output-port candidates for head flits; adaptive
    /// algorithms pick the candidate whose free VCs hold the most credits.
    /// Under an active fault set, dead output links are excluded; a packet
    /// with no live candidate is marked for dropping instead of wedging.
    fn route_computation(&mut self, k: usize, node: NodeId, ctx: &mut RouterCtx<'_>) {
        let v = self.num_vcs;
        let b0 = k * self.pv;
        let mut m = self.occ_mask[k];
        while m != 0 {
            let b = m.trailing_zeros() as usize;
            m &= m - 1;
            let idx = b0 + b;
            if self.in_dropping[idx] || self.in_route[idx].is_some() {
                continue;
            }
            let flit = self.bufs[idx].front().expect("occupied VC has a flit");
            debug_assert!(
                flit.is_head(),
                "non-head flit at front of an unrouted VC: flow-control bug"
            );
            let (packet, src, dst, vc_class) = (flit.packet, flit.src, flit.dst, flit.vc_class);
            let cands = if ctx.routing == RoutingAlgorithm::Table {
                // Table paths are enumerated over live links at build time
                // and rebuilt on every liveness change, so no per-hop
                // fault filter is needed here.
                let tables = ctx
                    .tables
                    .expect("table routing requires prebuilt RoutingTables");
                route_table(tables, ctx.topo, node, src, dst)
            } else {
                match ctx.faults {
                    Some(ls) => route_live(ctx.routing, ctx.topo, ls, node, src, dst),
                    None => route(ctx.routing, ctx.topo, node, src, dst),
                }
            };
            if cands.is_empty() {
                // Every minimal permitted direction is dead: the packet
                // is unroutable. Discard it (drain stage) rather than
                // letting it wedge the network.
                self.in_dropping[idx] = true;
                self.in_owner[idx] = Some(packet);
                continue;
            }
            let chosen = if cands.len() == 1 {
                cands[0]
            } else {
                let range = self.allowed_vcs(vc_class);
                *cands
                    .iter()
                    .max_by_key(|p| {
                        let ob = b0 + p.index() * v;
                        range
                            .clone()
                            .filter(|&ovc| self.out_owner[ob + ovc].is_none())
                            .map(|ovc| self.out_credits[ob + ovc] as usize)
                            .sum::<usize>()
                    })
                    .expect("route returned no candidates")
            };
            self.in_route[idx] = Some(chosen);
            self.in_owner[idx] = Some(packet);
            ctx.energy
                .record(ctx.power, PowerEvent::RouteCompute, ctx.dynamic_scale);
        }
    }

    /// Purge condemned packets from local router `k` and clear routes into
    /// dead links.
    ///
    /// * Flits of condemned packets are removed from every input VC;
    ///   `credit(in_port, vc)` is invoked once per removed flit so the
    ///   network can restore the upstream sender's credit.
    /// * Input VCs owned by a condemned packet are released, dropping the
    ///   downstream output-VC claim they held.
    /// * Routes that point into a dead link but have not yet claimed a
    ///   downstream VC are cleared so RC can re-route the packet around
    ///   the fault next cycle.
    ///
    /// Returns the number of flits removed.
    pub fn purge_and_reroute(
        &mut self,
        k: usize,
        condemned: &BTreeSet<PacketId>,
        dead: impl Fn(Port) -> bool,
        mut credit: impl FnMut(Port, usize),
    ) -> u64 {
        let v = self.num_vcs;
        let b0 = k * self.pv;
        let mut removed = 0u64;
        for ip in 0..Port::COUNT {
            let in_port = Port::from_index(ip);
            for vc in 0..v {
                let idx = b0 + ip * v + vc;
                if !condemned.is_empty() {
                    let mut purged = 0;
                    for pid in condemned {
                        purged += self.bufs[idx].purge_packet(*pid);
                    }
                    for _ in 0..purged {
                        credit(in_port, vc);
                    }
                    removed += purged as u64;
                    let owner_condemned =
                        self.in_owner[idx].is_some_and(|o| condemned.contains(&o));
                    if owner_condemned {
                        let claim = match (self.in_route[idx], self.in_out_vc[idx]) {
                            (Some(route), Some(out_vc)) if route != Port::Local => {
                                Some((route, out_vc as usize))
                            }
                            _ => None,
                        };
                        self.release(idx);
                        if let Some((route, out_vc)) = claim {
                            self.out_owner[b0 + route.index() * v + out_vc] = None;
                        }
                        // Under per-packet arbitration the condemned packet
                        // may hold an output port mid-transmission; free it
                        // or the port wedges forever.
                        let b = (ip * v + vc) as u32;
                        for hold in &mut self.sw_hold[k * Port::COUNT..(k + 1) * Port::COUNT] {
                            if *hold == b {
                                *hold = u32::MAX;
                            }
                        }
                    }
                }
                if let Some(route) = self.in_route[idx] {
                    if route != Port::Local && dead(route) && self.in_out_vc[idx].is_none() {
                        // Not yet committed downstream: let RC re-route.
                        self.in_route[idx] = None;
                    }
                }
            }
        }
        self.occ[k] -= removed as u32;
        let mut mask = 0u64;
        for b in 0..self.pv {
            if !self.bufs[b0 + b].is_empty() {
                mask |= 1 << b;
            }
        }
        self.occ_mask[k] = mask;
        removed
    }
}
