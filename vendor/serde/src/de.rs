//! Deserialization half of the stub data model.

use crate::Value;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Display;
use std::hash::Hash;

/// Errors producible by a [`Deserializer`] (mirrors `serde::de::Error`).
pub trait Error: Sized + std::error::Error {
    /// Build an error from any displayable message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A source of [`Value`] trees (mirrors `serde::Deserializer`).
///
/// The stub model is fully self-describing and borrowed: a deserializer is
/// just a handle on a `&'de Value`. `from_value` is a trait-level
/// constructor so generic code (and the derive) can descend into child
/// nodes without naming the concrete deserializer type.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// The value tree being read.
    fn value(&self) -> &'de Value;

    /// Build a deserializer over a child node.
    fn from_value(v: &'de Value) -> Self;
}

/// Types reconstructible from the [`Value`] data model (mirrors
/// `serde::Deserialize`).
pub trait Deserialize<'de>: Sized {
    /// Read `Self` out of the deserializer.
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error>;
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.value();
                let n = v.as_u64().ok_or_else(|| {
                    D::Error::custom(format!(
                        "expected unsigned integer, got {v}"
                    ))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    D::Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.value();
                let n = v.as_i64().ok_or_else(|| {
                    D::Error::custom(format!("expected integer, got {v}"))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    D::Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

de_uint!(u8, u16, u32, u64, usize);
de_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.value();
        v.as_f64()
            .ok_or_else(|| D::Error::custom(format!("expected number, got {v}")))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|x| x as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.value();
        v.as_bool()
            .ok_or_else(|| D::Error::custom(format!("expected bool, got {v}")))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.value();
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| D::Error::custom(format!("expected string, got {v}")))
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.value();
        if v.is_null() {
            Ok(())
        } else {
            Err(D::Error::custom(format!("expected null, got {v}")))
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.value();
        if v.is_null() {
            Ok(None)
        } else {
            T::deserialize(D::from_value(v)).map(Some)
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let v = d.value();
        let items = v
            .as_seq()
            .ok_or_else(|| D::Error::custom(format!("expected array, got {v}")))?;
        items
            .iter()
            .map(|x| T::deserialize(D::from_value(x)))
            .collect()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for VecDeque<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::deserialize(d)
            .map(Vec::into_iter)
            .map(VecDeque::from_iter)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        T::deserialize(d).map(Box::new)
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let items: Vec<T> = Vec::deserialize(d)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| D::Error::custom(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn deserialize<De: Deserializer<'de>>(d: De) -> Result<Self, De::Error> {
                let v = d.value();
                let items = v
                    .as_seq()
                    .ok_or_else(|| De::Error::custom(format!("expected array, got {v}")))?;
                if items.len() != $len {
                    return Err(De::Error::custom(format!(
                        "expected array of length {}, got {}", $len, items.len()
                    )));
                }
                Ok(($($t::deserialize(De::from_value(&items[$n]))?,)+))
            }
        }
    )*};
}

de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
    (6; 0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

fn map_entries<'de, D: Deserializer<'de>>(d: &D) -> Result<&'de [(String, Value)], D::Error> {
    let v = d.value();
    v.as_map()
        .ok_or_else(|| D::Error::custom(format!("expected object, got {v}")))
}

use crate::ser::MapKey;

fn parse_key<'de, D: Deserializer<'de>, K: MapKey>(k: &str) -> Result<K, D::Error> {
    K::from_key(k).ok_or_else(|| D::Error::custom(format!("invalid map key `{k}`")))
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: MapKey + Eq + Hash,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let entries = map_entries(&d)?;
        entries
            .iter()
            .map(|(k, v)| Ok((parse_key::<D, K>(k)?, V::deserialize(D::from_value(v))?)))
            .collect()
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: MapKey + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let entries = map_entries(&d)?;
        entries
            .iter()
            .map(|(k, v)| Ok((parse_key::<D, K>(k)?, V::deserialize(D::from_value(v))?)))
            .collect()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(d.value().clone())
    }
}

/// Convenience mirror of `serde::de::DeserializeOwned`: satisfied by every
/// stub `Deserialize` impl in this workspace (all are owned).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

// Some derived code deserializes map-keyed collections generically; the
// helper lives here so the derive doesn't need to special-case key types.
#[doc(hidden)]
pub fn __collect_pairs<'de, K, V, D, C>(d: D) -> Result<C, D::Error>
where
    D: Deserializer<'de>,
    K: Deserialize<'de> + Eq + Hash + Ord,
    V: Deserialize<'de>,
    C: FromIterator<(K, V)>,
{
    let v = d.value();
    let items = v
        .as_seq()
        .ok_or_else(|| Error::custom(format!("expected entry list, got {v}")))?;
    items
        .iter()
        .map(|pair| <(K, V)>::deserialize(D::from_value(pair)))
        .collect()
}
