//! State encoding: turn per-epoch NoC telemetry into the observation vector
//! the agent consumes.
//!
//! Per region: normalized buffer occupancy, observed injection rate, and the
//! current V/F level. Globally: normalized latency, accepted throughput,
//! source-queue backlog, injection burstiness (index of dispersion of the
//! offered process, so the controller can observe workload shifts and
//! bursty phases), and fabric degradation (mean dead links, so it can react
//! to faults). All features are scaled into `[0, 1]` so one MLP
//! architecture works across mesh sizes and loads.

use noc_sim::WindowMetrics;
use serde::{Deserialize, Serialize};

/// Encodes epoch telemetry into a fixed-size feature vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateEncoder {
    num_regions: usize,
    num_levels: usize,
    num_nodes: usize,
    /// Buffer capacity per region (normalizer for occupancy).
    region_capacity: Vec<usize>,
    /// Nodes per region (normalizer for injection rate).
    region_nodes: Vec<usize>,
    /// Latency (cycles) mapped to feature value 0.5; twice this saturates
    /// the feature at 1.0.
    pub latency_scale: f64,
    /// Backlog (flits per node) mapped to feature value 1.0.
    pub backlog_scale: f64,
    /// Mean directed dead links mapped to feature value 1.0 (degraded-fabric
    /// signal; policies saved before fault support default to 8.0).
    #[serde(default = "default_fault_scale")]
    pub fault_scale: f64,
    /// Injection burstiness (index of dispersion of block-aggregated offered
    /// packets) mapped to feature value 1.0. Bernoulli traffic sits near
    /// `1/burst_scale`; bursty on/off phases push toward saturation.
    /// Policies saved before workload support default to 8.0.
    #[serde(default = "default_burst_scale")]
    pub burst_scale: f64,
}

fn default_fault_scale() -> f64 {
    8.0
}

fn default_burst_scale() -> f64 {
    8.0
}

impl StateEncoder {
    /// Build an encoder for a network with the given region layout.
    ///
    /// # Panics
    /// Panics if region vectors are empty or of mismatched length.
    pub fn new(
        region_capacity: Vec<usize>,
        region_nodes: Vec<usize>,
        num_levels: usize,
        num_nodes: usize,
    ) -> Self {
        assert!(!region_capacity.is_empty(), "need at least one region");
        assert_eq!(
            region_capacity.len(),
            region_nodes.len(),
            "region vectors must align"
        );
        assert!(
            num_levels > 0 && num_nodes > 0,
            "levels and nodes must be positive"
        );
        StateEncoder {
            num_regions: region_capacity.len(),
            num_levels,
            num_nodes,
            region_capacity,
            region_nodes,
            latency_scale: 60.0,
            backlog_scale: 20.0,
            fault_scale: default_fault_scale(),
            burst_scale: default_burst_scale(),
        }
    }

    /// Number of regions this encoder covers.
    pub fn num_regions(&self) -> usize {
        self.num_regions
    }

    /// Dimensionality of the produced observation: `3·regions + 5`.
    pub fn state_dim(&self) -> usize {
        3 * self.num_regions + 5
    }

    /// Encode one epoch.
    ///
    /// # Panics
    /// Panics if `levels.len() != num_regions` or the metrics were collected
    /// with a different region count.
    pub fn encode(&self, metrics: &WindowMetrics, levels: &[usize]) -> Vec<f32> {
        assert_eq!(
            levels.len(),
            self.num_regions,
            "level vector length mismatch"
        );
        assert_eq!(
            metrics.region_occupancy.len(),
            self.num_regions,
            "metrics region count mismatch"
        );
        let mut out = Vec::with_capacity(self.state_dim());
        let cycles = metrics.cycles.max(1) as f64;
        for (((&occ_raw, &inj_raw), (&cap, &nodes)), &level) in metrics
            .region_occupancy
            .iter()
            .zip(&metrics.region_injected_flits)
            .zip(self.region_capacity.iter().zip(&self.region_nodes))
            .zip(levels)
        {
            let occ = occ_raw / cap.max(1) as f64;
            out.push(occ.clamp(0.0, 1.0) as f32);
            let inj = inj_raw as f64 / (cycles * nodes.max(1) as f64);
            out.push(inj.clamp(0.0, 1.0) as f32);
            let lvl = if self.num_levels > 1 {
                level as f64 / (self.num_levels - 1) as f64
            } else {
                1.0
            };
            out.push(lvl as f32);
        }
        // Global latency: 0.5 at latency_scale, saturating at 2×; when no
        // packet completed this epoch, pessimistic if traffic is in flight.
        let lat = if metrics.latency_samples > 0 {
            (metrics.avg_packet_latency / (2.0 * self.latency_scale)).clamp(0.0, 1.0)
        } else if metrics.avg_occupancy > 0.5 {
            1.0
        } else {
            0.0
        };
        out.push(lat as f32);
        out.push(metrics.throughput.clamp(0.0, 1.0) as f32);
        let backlog = metrics.avg_backlog / (self.num_nodes as f64 * self.backlog_scale);
        out.push(backlog.clamp(0.0, 1.0) as f32);
        // Injection burstiness: the workload-shift observable. Memoryless
        // traffic reads low; bursty/pulsed phases push toward 1.
        let burst = metrics.injection_burstiness / self.burst_scale;
        out.push(burst.clamp(0.0, 1.0) as f32);
        // Fabric degradation: 0 on a healthy mesh, saturating at
        // `fault_scale` mean dead links.
        let faults = metrics.avg_dead_links / self.fault_scale;
        out.push(faults.clamp(0.0, 1.0) as f32);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(regions: usize) -> WindowMetrics {
        WindowMetrics {
            cycles: 100,
            offered_packets: 32,
            injection_burstiness: 0.0,
            phase_cycles: vec![100],
            phase_offered_packets: vec![32],
            injected_flits: 160,
            injected_packets: 32,
            ejected_flits: 150,
            ejected_packets: 30,
            dropped_flits: 0,
            dropped_packets: 0,
            avg_dead_links: 0.0,
            latency_samples: 30,
            avg_packet_latency: 30.0,
            avg_network_latency: 25.0,
            avg_hops: 4.0,
            throughput: 0.15,
            injection_rate: 0.16,
            energy_pj: 1000.0,
            dynamic_pj: 700.0,
            leakage_pj: 300.0,
            avg_occupancy: 12.0,
            region_occupancy: vec![3.0; regions],
            region_injected_flits: vec![40; regions],
            avg_backlog: 8.0,
        }
    }

    fn encoder() -> StateEncoder {
        StateEncoder::new(vec![320; 4], vec![16; 4], 4, 64)
    }

    #[test]
    fn state_dim_matches_layout() {
        let e = encoder();
        assert_eq!(e.state_dim(), 17);
        let s = e.encode(&metrics(4), &[0, 1, 2, 3]);
        assert_eq!(s.len(), 17);
    }

    #[test]
    fn burstiness_feature_tracks_workload_dispersion() {
        let e = encoder();
        let mut m = metrics(4);
        let s = e.encode(&m, &[0; 4]);
        // Burstiness sits just before the fault feature.
        assert_eq!(s[15], 0.0, "smooth traffic reads zero");
        m.injection_burstiness = 4.0; // scale 8 -> 0.5
        let s = e.encode(&m, &[0; 4]);
        assert!((s[15] - 0.5).abs() < 1e-6);
        m.injection_burstiness = 1e9;
        let s = e.encode(&m, &[0; 4]);
        assert_eq!(s[15], 1.0, "feature saturates");
    }

    #[test]
    fn fault_feature_tracks_dead_links() {
        let e = encoder();
        let mut m = metrics(4);
        let s = e.encode(&m, &[0; 4]);
        assert_eq!(*s.last().unwrap(), 0.0, "healthy fabric reads zero");
        m.avg_dead_links = 4.0; // scale 8 -> 0.5
        let s = e.encode(&m, &[0; 4]);
        assert!((s.last().unwrap() - 0.5).abs() < 1e-6);
        m.avg_dead_links = 1e9;
        let s = e.encode(&m, &[0; 4]);
        assert_eq!(*s.last().unwrap(), 1.0, "feature saturates");
    }

    #[test]
    fn features_are_bounded() {
        let e = encoder();
        let mut m = metrics(4);
        m.avg_packet_latency = 1e9;
        m.avg_backlog = 1e9;
        m.throughput = 5.0;
        m.region_occupancy = vec![1e9; 4];
        m.region_injected_flits = vec![u64::MAX / 2; 4];
        let s = e.encode(&m, &[3, 3, 3, 3]);
        assert!(s.iter().all(|&x| (0.0..=1.0).contains(&x)), "{s:?}");
    }

    #[test]
    fn level_feature_is_normalized() {
        let e = encoder();
        let s = e.encode(&metrics(4), &[0, 1, 2, 3]);
        // Level features sit at indices 2, 5, 8, 11.
        assert_eq!(s[2], 0.0);
        assert!((s[5] - 1.0 / 3.0).abs() < 1e-6);
        assert!((s[8] - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(s[11], 1.0);
    }

    #[test]
    fn occupancy_and_rate_normalization() {
        let e = encoder();
        let s = e.encode(&metrics(4), &[0; 4]);
        // occ = 3/320; inj = 40/(100*16) = 0.025.
        assert!((s[0] - 3.0 / 320.0).abs() < 1e-6);
        assert!((s[1] - 0.025).abs() < 1e-6);
        // latency 30 with scale 60 → 30/120 = 0.25.
        assert!((s[12] - 0.25).abs() < 1e-6);
        assert!((s[13] - 0.15).abs() < 1e-6);
    }

    #[test]
    fn missing_latency_is_pessimistic_under_load() {
        let e = encoder();
        let mut m = metrics(4);
        m.latency_samples = 0;
        m.avg_occupancy = 50.0;
        let s = e.encode(&m, &[0; 4]);
        assert_eq!(s[12], 1.0, "stalled traffic reads as worst-case latency");
        m.avg_occupancy = 0.0;
        let s = e.encode(&m, &[0; 4]);
        assert_eq!(s[12], 0.0, "idle network reads as zero latency");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_level_count_panics() {
        let e = encoder();
        let _ = e.encode(&metrics(4), &[0; 3]);
    }
}
