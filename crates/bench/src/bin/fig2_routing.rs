//! Fig 2 — routing-algorithm comparison: Odd-Even adaptive vs XY under
//! transpose and hotspot traffic (the adaptivity knob of the
//! self-configuration space).
//!
//! Expected shape: odd-even ties XY at low load and wins past mid-load on
//! the adversarial patterns.

use noc_bench::{configs, fmt, parallel_map, print_table, save_csv, save_markdown, Scale};
use noc_sim::{RoutingAlgorithm, Simulator, TrafficPattern};

fn main() {
    let scale = Scale::from_env();
    let rates: Vec<f64> = scale.pick(
        vec![0.02, 0.06, 0.10, 0.14, 0.18, 0.22, 0.26],
        vec![0.05, 0.15],
    );
    let (warmup, measure, drain) = scale.pick((2000, 8000, 8000), (300, 800, 800));
    let algorithms = [
        ("xy", RoutingAlgorithm::Xy),
        ("odd-even", RoutingAlgorithm::OddEven),
        ("west-first", RoutingAlgorithm::WestFirst),
    ];
    let patterns: Vec<(&str, TrafficPattern)> = vec![
        ("transpose", TrafficPattern::Transpose),
        ("hotspot", configs::hotspot()),
        ("uniform", TrafficPattern::Uniform),
    ];

    let mut grid = Vec::new();
    for (pname, pattern) in &patterns {
        for (aname, alg) in &algorithms {
            for &rate in &rates {
                grid.push((
                    pname.to_string(),
                    aname.to_string(),
                    *alg,
                    pattern.clone(),
                    rate,
                ));
            }
        }
    }
    let threads = noc_bench::default_threads();
    let results = parallel_map(grid.len(), threads, |i| {
        let (_, _, alg, pattern, rate) = &grid[i];
        let cfg = configs::mesh8()
            .with_traffic(pattern.clone(), *rate)
            .with_routing(*alg)
            .with_seed(200 + i as u64);
        let mut sim = Simulator::new(cfg).expect("valid config");
        let s = sim.run_classic(warmup, measure, drain);
        (
            s.window.avg_packet_latency,
            s.window.throughput,
            s.saturated,
        )
    });

    let mut rows = Vec::new();
    for (i, (pname, aname, _, _, rate)) in grid.iter().enumerate() {
        let (lat, tput, sat) = results[i];
        rows.push(vec![
            pname.clone(),
            aname.clone(),
            format!("{rate:.3}"),
            fmt(lat),
            fmt(tput),
            if sat { "yes".into() } else { "no".into() },
        ]);
    }
    let headers = [
        "pattern",
        "routing",
        "offered rate",
        "avg latency",
        "throughput",
        "saturated",
    ];
    let md = print_table(
        "Fig 2 — routing algorithms under adversarial traffic",
        &headers,
        &rows,
    );
    save_csv("fig2_routing", &headers, &rows);
    save_markdown("fig2_routing", &md);
}
