//! # proptest (offline stand-in)
//!
//! A minimal re-implementation of the slice of proptest this workspace
//! uses: the [`proptest!`] macro, range / tuple / `Just` / `prop_oneof!` /
//! `prop::collection::vec` strategies, `prop_map`, `any::<T>()`, and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the panic from the failing
//!   inputs directly (inputs are printed in the panic context by the
//!   `prop_assert*` message where the test chooses to include them).
//! * **Deterministic.** Each test derives its RNG seed from the test
//!   function's name, so runs are reproducible without a persistence file.
//! * `prop_assert!` and friends panic (like `assert!`) instead of
//!   returning `TestCaseError`, which the std test harness reports
//!   identically.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The whole crate, under the conventional `prop` alias
    /// (`prop::collection::vec`, …).
    pub use crate as prop;
}

/// Run a block of property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
          $(#[$meta:meta])*
          fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __strategies = ( $(&$strat,)* );
                let mut __rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for _ in 0..__config.cases {
                    // Strategy refs are `Copy`, so this destructuring leaves
                    // `__strategies` reusable on the next iteration.
                    let ( $($arg,)* ) = __strategies;
                    let ( $($arg,)* ) =
                        ( $($crate::strategy::Strategy::sample($arg, &mut __rng),)* );
                    $body
                }
            }
        )*
    };
}

/// Choose uniformly among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let mut __options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec::Vec::new();
        $(__options.push(::std::boxed::Box::new($strategy));)+
        $crate::strategy::Union::new(__options)
    }};
}

/// Assert a condition inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Assert inequality inside a property test (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*);
    };
}
