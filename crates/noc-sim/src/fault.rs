//! Deterministic fault injection: timed link-down and router-down events.
//!
//! A [`FaultPlan`] is an ordered list of [`FaultEvent`]s — permanent or
//! transient failures of a link or a whole router — that the [`Network`]
//! applies at cycle boundaries. Plans are JSON round-trippable (they live
//! inside [`SimConfig`](crate::SimConfig)) and, like
//! [`PacketTrace`](crate::PacketTrace), loadable from and storable to a
//! simple CSV format (`start,duration,kind,node,port` per line, `#`
//! comments allowed). [`FaultPlan::random_links`] draws a seeded-random set
//! of link faults so scenario sweeps can explore fault *rates* without
//! hand-writing plans.
//!
//! Semantics (see DESIGN.md §8 for the full story):
//!
//! * a **link fault** takes the wire down in *both* directions;
//! * a **router fault** takes every incident link down and silences the
//!   router itself — flits inside it are lost, packets offered at its
//!   source queue are dropped, and it consumes no energy while dead;
//! * faults take effect only at cycle boundaries, where the network purges
//!   every packet severed by a newly dead component and counts it in the
//!   [`StatsCollector`](crate::StatsCollector) drop bucket;
//! * transient faults heal at `start + duration`; the purge keeps credit
//!   and VC bookkeeping consistent so a healed fabric resumes cleanly.
//!
//! [`Network`]: crate::Network

use crate::error::{SimError, SimResult};
use crate::topology::{NodeId, Port, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The component a fault takes down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTarget {
    /// The (bidirectional) link between `node` and its neighbor via `port`.
    Link {
        /// One endpoint of the link.
        node: NodeId,
        /// The cardinal port identifying the link from `node`'s side.
        port: Port,
    },
    /// An entire router, with every link incident to it.
    Router {
        /// The failing router.
        node: NodeId,
    },
}

/// One timed fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Cycle at which the fault takes effect.
    pub start: u64,
    /// Fault length in cycles; `None` is permanent.
    pub duration: Option<u64>,
    /// What fails.
    pub target: FaultTarget,
}

impl FaultEvent {
    /// Whether the fault is in force at `cycle`.
    pub fn active_at(&self, cycle: u64) -> bool {
        cycle >= self.start
            && match self.duration {
                Some(d) => cycle < self.start.saturating_add(d),
                None => true,
            }
    }
}

/// A deterministic fault schedule, applied by the network at cycle
/// boundaries. The default plan is empty (a pristine fabric).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Events sorted by start cycle.
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan: no component ever fails.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// Build a plan from events (sorted internally by start cycle).
    ///
    /// # Errors
    /// Returns an error for a zero-duration event or a link fault naming the
    /// `Local` port (processing-element links cannot fail independently of
    /// their router).
    pub fn new(mut events: Vec<FaultEvent>) -> SimResult<Self> {
        for e in &events {
            if e.duration == Some(0) {
                return Err(SimError::InvalidTrace(format!(
                    "zero-duration fault at cycle {}",
                    e.start
                )));
            }
            if let FaultTarget::Link {
                port: Port::Local, ..
            } = e.target
            {
                return Err(SimError::InvalidTrace(format!(
                    "link fault on the Local port at cycle {} (fail the router instead)",
                    e.start
                )));
            }
        }
        events.sort_by_key(|e| e.start);
        Ok(FaultPlan { events })
    }

    /// Draw `count` distinct permanent-or-transient link faults uniformly at
    /// random (seeded, deterministic) over the topology's undirected links,
    /// all starting at `start` with the given `duration`. `count` is capped
    /// at the number of distinct neighbor pairs in the topology. On a ring
    /// of length two, where a pair of nodes is joined by *two* parallel
    /// wires (0 -E-> 1 and 1 -E-> 0 are physically distinct), one drawn
    /// fault takes both down — a fault severs the whole neighbor
    /// connection, so such a plan may carry more events than `count`.
    ///
    /// # Panics
    /// Panics if `duration == Some(0)` — the same degenerate event
    /// [`FaultPlan::new`] rejects.
    pub fn random_links(
        topo: &Topology,
        count: usize,
        seed: u64,
        start: u64,
        duration: Option<u64>,
    ) -> Self {
        // The draw pool is the set of *neighbor pairs*, each named once from
        // its west/north endpoint. On a ring of length two (width-2 or
        // height-2 torus), both endpoints reach the same peer through the
        // same-axis port, so without the dedup the 0<->1 connection would
        // sit in the pool twice and skew the drawn fault count toward those
        // pairs.
        let mut links: Vec<(NodeId, Port)> = Vec::new();
        let mut seen: std::collections::BTreeSet<(usize, usize)> =
            std::collections::BTreeSet::new();
        for node in topo.nodes() {
            for port in [Port::East, Port::South] {
                if let Some(peer) = topo.neighbor(node, port) {
                    let pair = (node.0.min(peer.0), node.0.max(peer.0));
                    if seen.insert(pair) {
                        links.push((node, port));
                    }
                }
            }
        }
        let count = count.min(links.len());
        let mut rng = StdRng::seed_from_u64(seed);
        // Partial Fisher-Yates: the first `count` entries end up a uniform
        // sample without replacement.
        for k in 0..count {
            let pick = rng.gen_range(k..links.len());
            links.swap(k, pick);
        }
        let mut events: Vec<FaultEvent> = Vec::with_capacity(count);
        for &(node, port) in &links[..count] {
            events.push(FaultEvent {
                start,
                duration,
                target: FaultTarget::Link { node, port },
            });
            // A two-node ring joins the pair with a second, physically
            // distinct wire (the peer's same-axis port loops straight
            // back). Fault it too, so the drawn fault actually severs the
            // connection instead of leaving the reverse wire carrying all
            // of that row/column's traffic.
            let peer = topo.neighbor(node, port).expect("pooled links exist");
            if peer != node && topo.neighbor(peer, port) == Some(node) {
                events.push(FaultEvent {
                    start,
                    duration,
                    target: FaultTarget::Link { node: peer, port },
                });
            }
        }
        // Stable order independent of the draw order, so plans are
        // byte-identical for identical (topo, count, seed) inputs. All
        // events share `start`, so `new`'s stable sort preserves it.
        events.sort_by_key(|e| match e.target {
            FaultTarget::Link { node, port } => (node.0, port.index()),
            FaultTarget::Router { node } => (node.0, usize::MAX),
        });
        FaultPlan::new(events).expect("random_links draws only valid link events")
    }

    /// The events, sorted by start cycle.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events in the plan.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Check every event references components inside the topology.
    ///
    /// # Errors
    /// Returns the first out-of-range node or a link fault on a port with no
    /// neighbor (a mesh edge).
    pub fn validate(&self, topo: &Topology) -> SimResult<()> {
        let n = topo.num_nodes();
        for e in &self.events {
            let node = match e.target {
                FaultTarget::Link { node, .. } | FaultTarget::Router { node } => node,
            };
            if node.0 >= n {
                return Err(SimError::NodeOutOfRange {
                    node: node.0,
                    nodes: n,
                });
            }
            if let FaultTarget::Link { node, port } = e.target {
                if topo.neighbor(node, port).is_none() {
                    return Err(SimError::InvalidTrace(format!(
                        "link fault at cycle {}: {node} has no link via {port}",
                        e.start
                    )));
                }
            }
        }
        Ok(())
    }

    /// The cycles at which the active fault set changes (event starts and
    /// ends), sorted and deduplicated. The network recomputes link state
    /// exactly at these boundaries.
    pub fn boundaries(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.events.len() * 2);
        for e in &self.events {
            out.push(e.start);
            if let Some(d) = e.duration {
                out.push(e.start.saturating_add(d));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Parse the CSV format: one `start,duration,kind,node,port` per line.
    /// `duration` is a cycle count or `perm`; `kind` is `link` or `router`;
    /// `port` is `north`/`east`/`south`/`west` for links and `-` for
    /// routers. Blank lines and lines starting with `#` are skipped.
    ///
    /// # Errors
    /// Returns an error describing the first malformed line.
    pub fn from_csv(text: &str) -> SimResult<Self> {
        let mut events = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let bad = |what: &str| {
                SimError::InvalidTrace(format!("line {}: {what}: `{line}`", lineno + 1))
            };
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            if fields.len() != 5 {
                return Err(bad("expected `start,duration,kind,node,port`"));
            }
            let start: u64 = fields[0].parse().map_err(|_| bad("bad start cycle"))?;
            let duration = match fields[1] {
                "perm" => None,
                d => Some(d.parse::<u64>().map_err(|_| bad("bad duration"))?),
            };
            let node = NodeId(fields[3].parse().map_err(|_| bad("bad node"))?);
            let target = match fields[2] {
                "link" => FaultTarget::Link {
                    node,
                    port: parse_port(fields[4]).ok_or_else(|| bad("bad port"))?,
                },
                "router" => {
                    if fields[4] != "-" {
                        return Err(bad("router faults take `-` for the port field"));
                    }
                    FaultTarget::Router { node }
                }
                _ => return Err(bad("kind must be `link` or `router`")),
            };
            events.push(FaultEvent {
                start,
                duration,
                target,
            });
        }
        FaultPlan::new(events)
    }

    /// Render the CSV format parsed by [`FaultPlan::from_csv`].
    pub fn to_csv(&self) -> String {
        let mut out = String::from("# start,duration,kind,node,port\n");
        for e in &self.events {
            let duration = match e.duration {
                Some(d) => d.to_string(),
                None => "perm".to_string(),
            };
            match e.target {
                FaultTarget::Link { node, port } => {
                    out.push_str(&format!(
                        "{},{duration},link,{},{}\n",
                        e.start,
                        node.0,
                        port_name(port)
                    ));
                }
                FaultTarget::Router { node } => {
                    out.push_str(&format!("{},{duration},router,{},-\n", e.start, node.0));
                }
            }
        }
        out
    }
}

fn parse_port(s: &str) -> Option<Port> {
    match s {
        "north" => Some(Port::North),
        "east" => Some(Port::East),
        "south" => Some(Port::South),
        "west" => Some(Port::West),
        _ => None,
    }
}

fn port_name(p: Port) -> &'static str {
    match p {
        Port::North => "north",
        Port::East => "east",
        Port::South => "south",
        Port::West => "west",
        Port::Local => "local",
    }
}

/// The instantaneous liveness of every link and router, recomputed by the
/// network whenever the active fault set changes. Routers consult it during
/// route computation to exclude dead output ports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkState {
    /// Outgoing-link liveness per node, indexed by [`Port::index`]. The
    /// `Local` slot is always up for live routers.
    up: Vec<[bool; Port::COUNT]>,
    /// Router liveness per node.
    router_up: Vec<bool>,
    /// Directed dead links (a bidirectional link fault counts twice), only
    /// counting wires that exist in the topology.
    dead_links: usize,
}

impl LinkState {
    /// A fully healthy fabric of `num_nodes` routers.
    pub fn healthy(num_nodes: usize) -> Self {
        LinkState {
            up: vec![[true; Port::COUNT]; num_nodes],
            router_up: vec![true; num_nodes],
            dead_links: 0,
        }
    }

    /// Whether the directed link leaving `node` via `port` is up. `Local`
    /// tracks the router's own liveness.
    pub fn is_link_up(&self, node: NodeId, port: Port) -> bool {
        self.up[node.0][port.index()]
    }

    /// Whether the router at `node` is alive.
    pub fn is_router_up(&self, node: NodeId) -> bool {
        self.router_up[node.0]
    }

    /// Number of directed dead links (each bidirectional link fault
    /// contributes two).
    pub fn dead_link_count(&self) -> usize {
        self.dead_links
    }

    /// Whether any component is currently down.
    pub fn any_faults(&self) -> bool {
        self.dead_links > 0 || self.router_up.iter().any(|&u| !u)
    }

    fn take_link_down(&mut self, topo: &Topology, node: NodeId, port: Port) {
        if let Some(peer) = topo.neighbor(node, port) {
            for (n, p) in [(node, port), (peer, port.opposite())] {
                let slot = &mut self.up[n.0][p.index()];
                if *slot {
                    *slot = false;
                    self.dead_links += 1;
                }
            }
        }
    }

    /// Rebuild liveness from the plan's events active at `cycle`.
    pub fn recompute(&mut self, topo: &Topology, plan: &FaultPlan, cycle: u64) {
        for row in &mut self.up {
            *row = [true; Port::COUNT];
        }
        self.router_up.fill(true);
        self.dead_links = 0;
        for e in plan.events() {
            if !e.active_at(cycle) {
                continue;
            }
            match e.target {
                FaultTarget::Link { node, port } => self.take_link_down(topo, node, port),
                FaultTarget::Router { node } => {
                    if self.router_up[node.0] {
                        self.router_up[node.0] = false;
                        self.up[node.0][Port::Local.index()] = false;
                        for port in [Port::North, Port::East, Port::South, Port::West] {
                            self.take_link_down(topo, node, port);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(start: u64, duration: Option<u64>, node: usize, port: Port) -> FaultEvent {
        FaultEvent {
            start,
            duration,
            target: FaultTarget::Link {
                node: NodeId(node),
                port,
            },
        }
    }

    #[test]
    fn events_sort_and_activate() {
        let plan = FaultPlan::new(vec![
            link(50, Some(10), 0, Port::East),
            link(5, None, 1, Port::South),
        ])
        .unwrap();
        assert_eq!(plan.events()[0].start, 5);
        assert!(plan.events()[0].active_at(5));
        assert!(
            plan.events()[0].active_at(1_000_000),
            "permanent faults persist"
        );
        assert!(!plan.events()[1].active_at(49));
        assert!(plan.events()[1].active_at(59));
        assert!(!plan.events()[1].active_at(60), "transient faults heal");
        assert_eq!(plan.boundaries(), vec![5, 50, 60]);
    }

    #[test]
    fn degenerate_events_rejected() {
        assert!(FaultPlan::new(vec![link(0, Some(0), 0, Port::East)]).is_err());
        assert!(FaultPlan::new(vec![link(0, None, 0, Port::Local)]).is_err());
    }

    #[test]
    fn validate_checks_topology() {
        let topo = Topology::mesh(2, 2);
        assert!(FaultPlan::new(vec![link(0, None, 0, Port::East)])
            .unwrap()
            .validate(&topo)
            .is_ok());
        // Node out of range.
        assert!(FaultPlan::new(vec![link(0, None, 9, Port::East)])
            .unwrap()
            .validate(&topo)
            .is_err());
        // Mesh edge: node 0 has no west neighbor.
        assert!(FaultPlan::new(vec![link(0, None, 0, Port::West)])
            .unwrap()
            .validate(&topo)
            .is_err());
        // Routers only need a valid node.
        let router = FaultPlan::new(vec![FaultEvent {
            start: 0,
            duration: None,
            target: FaultTarget::Router { node: NodeId(3) },
        }])
        .unwrap();
        assert!(router.validate(&topo).is_ok());
    }

    #[test]
    fn csv_roundtrip_identity() {
        let plan = FaultPlan::new(vec![
            link(0, None, 5, Port::East),
            link(100, Some(50), 2, Port::North),
            FaultEvent {
                start: 30,
                duration: None,
                target: FaultTarget::Router { node: NodeId(7) },
            },
        ])
        .unwrap();
        let csv = plan.to_csv();
        let back = FaultPlan::from_csv(&csv).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.to_csv(), csv, "store -> load -> store is the identity");
    }

    #[test]
    fn csv_parsing_is_strict_but_tolerant_of_comments() {
        let text = "# header\n\n 0, perm, link, 5, east \n10,20,router,3,-\n";
        let plan = FaultPlan::from_csv(text).unwrap();
        assert_eq!(plan.len(), 2);
        assert!(
            FaultPlan::from_csv("0,perm,link,5").is_err(),
            "missing field"
        );
        assert!(
            FaultPlan::from_csv("x,perm,link,5,east").is_err(),
            "bad start"
        );
        assert!(FaultPlan::from_csv("0,perm,link,5,up").is_err(), "bad port");
        assert!(FaultPlan::from_csv("0,perm,core,5,-").is_err(), "bad kind");
        assert!(
            FaultPlan::from_csv("0,perm,router,5,east").is_err(),
            "router rows take `-`"
        );
        assert!(
            FaultPlan::from_csv("0,0,link,5,east").is_err(),
            "zero duration"
        );
    }

    #[test]
    fn json_roundtrip() {
        let plan = FaultPlan::new(vec![link(3, Some(9), 1, Port::South)]).unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn random_links_are_deterministic_and_distinct() {
        let topo = Topology::mesh(4, 4);
        let a = FaultPlan::random_links(&topo, 5, 42, 0, None);
        let b = FaultPlan::random_links(&topo, 5, 42, 0, None);
        assert_eq!(a, b, "same seed must draw the same plan");
        assert_eq!(a.len(), 5);
        let mut targets: Vec<_> = a
            .events()
            .iter()
            .map(|e| match e.target {
                FaultTarget::Link { node, port } => (node.0, port.index()),
                FaultTarget::Router { .. } => unreachable!("random_links draws links"),
            })
            .collect();
        targets.dedup();
        assert_eq!(targets.len(), 5, "links drawn without replacement");
        assert!(a.validate(&topo).is_ok());
        let c = FaultPlan::random_links(&topo, 5, 43, 0, None);
        assert_ne!(a, c, "different seeds draw different plans");
        // Count is capped at the number of links (24 undirected on 4x4).
        assert_eq!(FaultPlan::random_links(&topo, 1_000, 1, 0, None).len(), 24);
    }

    /// Regression: on rings of length two, both endpoints reach the same
    /// peer through the same-axis port, and the draw pool used to list that
    /// neighbor pair twice — a full draw then produced duplicate endpoint
    /// pairs and an inflated fault count. The fix draws each pair once and
    /// fails *both* parallel wires, so a drawn fault actually severs the
    /// connection.
    #[test]
    fn random_links_dedups_two_node_rings() {
        let pair_of = |topo: &Topology, e: &FaultEvent| match e.target {
            FaultTarget::Link { node, port } => {
                let peer = topo.neighbor(node, port).expect("drawn links exist");
                (node.0.min(peer.0), node.0.max(peer.0))
            }
            FaultTarget::Router { .. } => unreachable!("random_links draws links"),
        };
        // 2x2 torus: four distinct neighbor pairs, each joined by two
        // parallel wires. A full draw covers every pair exactly once, with
        // both wires of each pair faulted.
        let topo = Topology::torus(2, 2);
        let plan = FaultPlan::random_links(&topo, 1_000, 7, 0, None);
        let mut pairs: Vec<_> = plan.events().iter().map(|e| pair_of(&topo, e)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 4, "4 distinct neighbor pairs, none repeated");
        assert_eq!(plan.len(), 8, "both parallel wires of every pair fail");
        assert!(plan.validate(&topo).is_ok());
        // A single drawn fault on a 2-ring disconnects the pair entirely:
        // every directed link between the two endpoints is down.
        let single = FaultPlan::random_links(&topo, 1, 7, 0, None);
        assert_eq!(single.len(), 2);
        let mut ls = LinkState::healthy(4);
        ls.recompute(&topo, &single, 0);
        let (a, b) = pair_of(&topo, &single.events()[0]);
        for port in [Port::North, Port::East, Port::South, Port::West] {
            for (from, to) in [(a, b), (b, a)] {
                if topo.neighbor(NodeId(from), port) == Some(NodeId(to)) {
                    assert!(
                        !ls.is_link_up(NodeId(from), port),
                        "wire {from} -{port}-> {to} must be down"
                    );
                }
            }
        }
        // Height-2 torus: only the vertical rings degenerate (4 column
        // pairs, 2 wires each), the width-4 rows contribute their 8
        // single-wire pairs.
        let topo = Topology::torus(4, 2);
        let plan = FaultPlan::random_links(&topo, 1_000, 7, 0, None);
        let mut pairs: Vec<_> = plan.events().iter().map(|e| pair_of(&topo, e)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 12, "8 row pairs + 4 column pairs");
        assert_eq!(plan.len(), 8 + 2 * 4);
        // Meshes have no wrap wires and are unaffected by the dedup.
        let topo = Topology::mesh(4, 2);
        assert_eq!(
            FaultPlan::random_links(&topo, 1_000, 7, 0, None).len(),
            // 3 east wires per row x 2 rows + 4 south wires x 1 row gap.
            3 * 2 + 4
        );
    }

    #[test]
    fn link_state_tracks_faults_and_heals() {
        let topo = Topology::mesh(4, 4);
        let plan = FaultPlan::new(vec![
            link(10, Some(20), 5, Port::East),
            FaultEvent {
                start: 10,
                duration: None,
                target: FaultTarget::Router { node: NodeId(0) },
            },
        ])
        .unwrap();
        let mut ls = LinkState::healthy(16);
        assert!(!ls.any_faults());
        ls.recompute(&topo, &plan, 15);
        assert!(ls.any_faults());
        assert!(!ls.is_link_up(NodeId(5), Port::East));
        assert!(!ls.is_link_up(NodeId(6), Port::West), "both directions die");
        assert!(!ls.is_router_up(NodeId(0)));
        assert!(!ls.is_link_up(NodeId(0), Port::East));
        assert!(!ls.is_link_up(NodeId(1), Port::West));
        assert!(!ls.is_link_up(NodeId(4), Port::North));
        // link 5<->6 (2 directed) + router 0's two incident links (4 directed).
        assert_eq!(ls.dead_link_count(), 6);
        // The transient link heals; the permanent router fault does not.
        ls.recompute(&topo, &plan, 30);
        assert!(ls.is_link_up(NodeId(5), Port::East));
        assert!(!ls.is_router_up(NodeId(0)));
        assert_eq!(ls.dead_link_count(), 4);
    }
}
