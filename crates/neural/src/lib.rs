//! # neural — a minimal from-scratch neural-network library
//!
//! Supplies the function approximators for the deep-RL stack of the
//! *Self-Configurable NoC* reproduction: dense layers with ReLU/tanh/sigmoid
//! activations, MSE and Huber losses, SGD/momentum/Adam optimizers, and
//! JSON model serialization. No external ML dependency.
//!
//! ```
//! use neural::{Activation, Loss, Matrix, Mlp, Adam};
//!
//! // Fit y = x1 + x2 on a tiny batch.
//! let mut net = Mlp::new(&[2, 8, 1], Activation::Tanh, Activation::Linear, 0);
//! let x = Matrix::from_vec(2, 2, vec![0.1, 0.2, 0.3, 0.4]);
//! let t = Matrix::from_vec(2, 1, vec![0.3, 0.7]);
//! let mut opt = Adam::new(0.01);
//! for _ in 0..100 {
//!     net.train_batch(&x, &t, Loss::Mse, &mut opt);
//! }
//! let pred = net.predict(&x);
//! assert!((pred.get(0, 0) - 0.3).abs() < 0.1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activation;
pub mod init;
pub mod layer;
pub mod loss;
pub mod network;
pub mod optim;
pub mod tensor;

pub use activation::Activation;
pub use init::Init;
pub use layer::Dense;
pub use loss::Loss;
pub use network::{Mlp, ModelIoError};
pub use optim::{Adam, Optimizer, Sgd};
pub use tensor::Matrix;
